//! Simulation statistics: per-kernel and whole-run roll-ups.
//!
//! Every counter here is **thread-count invariant**: with parallel core
//! stepping enabled (`GpuDevice::set_sim_threads`), shared counters are
//! only mutated during the sequential merge phase, in fixed core order,
//! so a run's [`SimStats`] is byte-identical at any `--sim-threads`
//! value (enforced by `tests/golden_identity.rs` and the simcheck
//! sequential-vs-parallel differential oracle).

use crate::core_model::CoreStats;
use crate::sched_api::KernelId;
use gpgpu_mem::{CacheStats, Cycle, FabricStats};

/// Per-kernel outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// The kernel's id.
    pub id: KernelId,
    /// Kernel name (shared with the descriptor).
    pub name: std::sync::Arc<str>,
    /// Cycle the kernel became dispatchable.
    pub start_cycle: Cycle,
    /// Cycle its last CTA retired (0 while running).
    pub end_cycle: Cycle,
    /// Dynamic warp-instructions issued for this kernel.
    pub instructions: u64,
    /// CTAs in the grid.
    pub ctas: u64,
    /// Whether the kernel has become dispatchable yet (distinguishes a
    /// pending kernel from one activated at cycle 0).
    pub started: bool,
    /// Whether the kernel has completed.
    pub done: bool,
}

impl KernelStats {
    /// Execution time in cycles (0 while running — use
    /// [`elapsed`](Self::elapsed) for an in-flight kernel).
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Cycles the kernel has been running as of cycle `now`: its final
    /// execution time once done, the time since activation while in
    /// flight, and 0 while still pending.
    pub fn elapsed(&self, now: Cycle) -> u64 {
        if self.done {
            self.cycles()
        } else if self.started {
            now.saturating_sub(self.start_cycle)
        } else {
            0
        }
    }

    /// Instructions per cycle over the kernel's own lifetime.
    ///
    /// 0 while the kernel is in flight — mid-run consumers (the interval
    /// sampler, progress reports) should use [`ipc_at`](Self::ipc_at).
    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.instructions as f64 / c as f64
        }
    }

    /// Instructions per cycle as of cycle `now`: meaningful mid-run
    /// (in-flight kernels report their IPC so far rather than 0).
    pub fn ipc_at(&self, now: Cycle) -> f64 {
        let c = self.elapsed(now);
        if c == 0 {
            0.0
        } else {
            self.instructions as f64 / c as f64
        }
    }
}

/// Whole-run statistics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Total warp-instructions issued.
    pub instructions: u64,
    /// Per-kernel outcomes, in launch order.
    pub kernels: Vec<KernelStats>,
    /// L1 counters summed over cores.
    pub l1: CacheStats,
    /// Off-core memory-system counters.
    pub fabric: FabricStats,
    /// Per-core issue/stall counters.
    pub cores: Vec<CoreStats>,
    /// CTA-scheduler decisions the device had to discard as malformed
    /// (nonexistent core, zero count, or unknown kernel). Always 0 for
    /// well-behaved policies; debug builds additionally assert.
    pub malformed_dispatches: u64,
}

impl SimStats {
    /// Aggregate instructions-per-cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// The stats entry for `kernel`.
    pub fn kernel(&self, kernel: KernelId) -> Option<&KernelStats> {
        self.kernels.iter().find(|k| k.id == kernel)
    }

    /// Device-wide cycle-accounting roll-up: the stall taxonomy and
    /// occupancy integrals summed over every core.
    pub fn stall_breakdown(&self) -> StallBreakdown {
        let mut b = StallBreakdown::default();
        for c in &self.cores {
            b.core_cycles += c.core_cycles;
            b.issued_slots += c.issued_slots;
            b.idle_slots += c.idle_slots;
            b.stalled_slots += c.stalled_slots;
            b.no_resident += c.stall_no_resident;
            b.scoreboard += c.stall_scoreboard;
            b.mem_pending += c.stall_mem_pending;
            b.exec_busy += c.stall_exec_busy;
            b.barrier += c.stall_barrier;
            b.ff_idle += c.stall_ff_idle;
            b.cta_resident_cycles += c.cta_resident_cycles;
            b.warp_resident_cycles += c.warp_resident_cycles;
        }
        b
    }
}

/// Device-wide cycle accounting: where every scheduler slot went, summed
/// over cores (see [`CoreStats`] for the per-core counters and the
/// conservation identity). Built by [`SimStats::stall_breakdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Core cycles summed over cores (device cycles × core count).
    pub core_cycles: u64,
    /// Scheduler slots that issued.
    pub issued_slots: u64,
    /// Scheduler slots with no resident warps (legacy counter).
    pub idle_slots: u64,
    /// Scheduler slots with resident but unready warps (legacy counter).
    pub stalled_slots: u64,
    /// `NoResidentWarp` stall slots.
    pub no_resident: u64,
    /// `ScoreboardDep` stall slots.
    pub scoreboard: u64,
    /// `MemPending` (outstanding loads / LSQ / MSHR-full) stall slots.
    pub mem_pending: u64,
    /// `ExecUnitBusy` (shared-pipe busy, pick-declined) stall slots.
    pub exec_busy: u64,
    /// `BarrierWait` stall slots.
    pub barrier: u64,
    /// `FastForwardedIdle` (provably quiet cycle) stall slots.
    pub ff_idle: u64,
    /// Cycle-weighted resident-CTA integral summed over cores.
    pub cta_resident_cycles: u64,
    /// Cycle-weighted resident-warp integral summed over cores.
    pub warp_resident_cycles: u64,
}

impl StallBreakdown {
    /// Sum of the six taxonomy counters; equals
    /// `idle_slots + stalled_slots` by the conservation identity.
    pub fn stall_total(&self) -> u64 {
        self.no_resident
            + self.scoreboard
            + self.mem_pending
            + self.exec_busy
            + self.barrier
            + self.ff_idle
    }

    /// Every scheduler slot accounted: issued plus all stall categories.
    pub fn total_slots(&self) -> u64 {
        self.issued_slots + self.stall_total()
    }

    /// `count` as a fraction of all scheduler slots (0 when empty).
    pub fn slot_fraction(&self, count: u64) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            0.0
        } else {
            count as f64 / total as f64
        }
    }

    /// Average resident CTAs per core over the run.
    pub fn avg_resident_ctas(&self) -> f64 {
        if self.core_cycles == 0 {
            0.0
        } else {
            self.cta_resident_cycles as f64 / self.core_cycles as f64
        }
    }

    /// Average resident warps per core over the run.
    pub fn avg_resident_warps(&self) -> f64 {
        if self.core_cycles == 0 {
            0.0
        } else {
            self.warp_resident_cycles as f64 / self.core_cycles as f64
        }
    }

    /// `(label, count)` pairs for the six taxonomy categories, in
    /// rendering order (the labels are the ISSUE/DESIGN taxonomy names).
    pub fn categories(&self) -> [(&'static str, u64); 6] {
        [
            ("NoResidentWarp", self.no_resident),
            ("ScoreboardDep", self.scoreboard),
            ("MemPending", self.mem_pending),
            ("ExecUnitBusy", self.exec_busy),
            ("BarrierWait", self.barrier),
            ("FastForwardedIdle", self.ff_idle),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_ipc() {
        let k = KernelStats {
            id: KernelId(0),
            name: "k".into(),
            start_cycle: 100,
            end_cycle: 300,
            instructions: 400,
            ctas: 8,
            started: true,
            done: true,
        };
        assert_eq!(k.cycles(), 200);
        assert!((k.ipc() - 2.0).abs() < 1e-12);
        // elapsed/ipc_at agree with the final numbers once done,
        // regardless of `now`.
        assert_eq!(k.elapsed(10_000), 200);
        assert!((k.ipc_at(10_000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn running_kernel_has_zero_ipc() {
        let k = KernelStats {
            id: KernelId(0),
            name: "k".into(),
            start_cycle: 100,
            end_cycle: 0,
            instructions: 400,
            ctas: 8,
            started: true,
            done: false,
        };
        assert_eq!(k.cycles(), 0);
        assert_eq!(k.ipc(), 0.0);
    }

    #[test]
    fn in_flight_kernel_reports_elapsed_ipc() {
        let k = KernelStats {
            id: KernelId(0),
            name: "k".into(),
            start_cycle: 100,
            end_cycle: 0,
            instructions: 400,
            ctas: 8,
            started: true,
            done: false,
        };
        assert_eq!(k.elapsed(300), 200);
        assert!((k.ipc_at(300) - 2.0).abs() < 1e-12);
        assert_eq!(k.elapsed(50), 0, "clock before activation saturates");
    }

    #[test]
    fn stall_breakdown_sums_cores() {
        let mut a = CoreStats::default();
        a.core_cycles = 100;
        a.issued_slots = 40;
        a.idle_slots = 10;
        a.stalled_slots = 50;
        a.stall_scoreboard = 30;
        a.stall_mem_pending = 20;
        a.stall_no_resident = 10;
        a.cta_resident_cycles = 300;
        a.warp_resident_cycles = 1200;
        let mut b = CoreStats::default();
        b.core_cycles = 100;
        b.stall_ff_idle = 100;
        b.idle_slots = 100;
        let s = SimStats {
            cycles: 100,
            instructions: 0,
            kernels: Vec::new(),
            l1: Default::default(),
            fabric: Default::default(),
            cores: vec![a, b],
            malformed_dispatches: 0,
        };
        let bd = s.stall_breakdown();
        assert_eq!(bd.core_cycles, 200);
        assert_eq!(bd.stall_total(), 30 + 20 + 10 + 100);
        assert_eq!(bd.stall_total(), bd.idle_slots + bd.stalled_slots);
        assert_eq!(bd.total_slots(), 40 + 160);
        assert!((bd.avg_resident_ctas() - 1.5).abs() < 1e-12);
        assert!((bd.avg_resident_warps() - 6.0).abs() < 1e-12);
        assert!((bd.slot_fraction(bd.issued_slots) - 0.2).abs() < 1e-12);
        let cats = bd.categories();
        assert_eq!(cats[1], ("ScoreboardDep", 30));
        assert_eq!(cats[5], ("FastForwardedIdle", 100));
    }

    #[test]
    fn pending_kernel_reports_zero() {
        let k = KernelStats {
            id: KernelId(1),
            name: "k".into(),
            start_cycle: 0,
            end_cycle: 0,
            instructions: 0,
            ctas: 8,
            started: false,
            done: false,
        };
        assert_eq!(k.elapsed(9999), 0, "pending, not 'running since 0'");
        assert_eq!(k.ipc_at(9999), 0.0);
    }
}
