//! E6 — how close LCS's online estimate gets to the oracle limit: the
//! per-core limits LCS decided during the run versus the best static limit
//! from an offline sweep.

use super::{r3, run_one, LIMIT_SWEEP};
use crate::{Harness, Table};
use gpgpu_workloads::{by_name, run_workload_with_device};
use tbs_core::{CtaPolicy, Lcs, WarpPolicy};

/// Workloads shown in the accuracy table (one per class plus extremes).
pub const ACCURACY_SUITE: [&str; 6] = [
    "vecadd",
    "stridedcopy",
    "spmv-ell",
    "gather",
    "fmaheavy",
    "matmul-tiled",
];

/// For each workload: run LCS, extract the decided per-core limits, and
/// compare with the oracle.
pub fn run(h: &Harness) -> Vec<Table> {
    let mut t = Table::new(
        "E6: LCS-decided per-core CTA limit vs the static oracle",
        &[
            "workload", "hw-max", "lcs-min", "lcs-median", "lcs-max", "oracle-limit",
            "oracle-speedup",
        ],
    );
    for name in ACCURACY_SUITE {
        // LCS run, keeping the device to read the decisions back.
        let mut w = by_name(name, h.scale).expect("suite member");
        let factory = WarpPolicy::Gto.factory();
        let (_, gpu) = run_workload_with_device(
            w.as_mut(),
            h.gpu.clone(),
            factory.as_ref(),
            CtaPolicy::Lcs(0.7).scheduler(),
            h.max_cycles,
        )
        .unwrap_or_else(|e| panic!("{name} under lcs: {e}"));
        // Occupancy limit for context.
        let mut scratch = gpgpu_sim::GlobalMem::new();
        let desc = by_name(name, h.scale).expect("member").prepare(&mut scratch);
        let hw_max = gpgpu_sim::core_model::Core::hw_max_ctas(&h.gpu, &desc);

        let lcs = gpu
            .cta_scheduler()
            .as_any()
            .and_then(|a| a.downcast_ref::<Lcs>())
            .expect("scheduler is Lcs");
        // The utilization guard reports u32::MAX ("keep the hardware
        // maximum"); clamp for display.
        let mut limits: Vec<u32> = lcs.decisions().map(|(_, l)| (*l).min(hw_max)).collect();
        limits.sort_unstable();
        let (lo, med, hi) = if limits.is_empty() {
            (0, 0, 0)
        } else {
            (
                limits[0],
                limits[limits.len() / 2],
                *limits.last().expect("nonempty"),
            )
        };

        // Oracle from the static sweep.
        let base = run_one(h, name, WarpPolicy::Gto, CtaPolicy::Baseline(None));
        let mut oracle = (u32::MAX, base.cycles());
        for limit in LIMIT_SWEEP {
            let o = run_one(h, name, WarpPolicy::Gto, CtaPolicy::Baseline(Some(limit)));
            if o.cycles() < oracle.1 {
                oracle = (limit, o.cycles());
            }
        }
        let oracle_limit = if oracle.0 == u32::MAX {
            format!("max({hw_max})")
        } else {
            oracle.0.to_string()
        };
        t.push_row(vec![
            name.to_string(),
            hw_max.to_string(),
            lo.to_string(),
            med.to_string(),
            hi.to_string(),
            oracle_limit,
            r3(base.cycles() as f64 / oracle.1 as f64),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_table_builds() {
        let tables = run(&Harness::quick());
        assert_eq!(tables[0].len(), ACCURACY_SUITE.len());
    }
}
