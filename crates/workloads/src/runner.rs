//! One-call helpers to run a workload on a device with given policies.

use crate::common::{VerifyError, Workload};
use gpgpu_sim::{
    CtaScheduler, ExecRecord, GpuConfig, GpuDevice, KernelId, MemorySink, SimError, SimStats,
    TelemetryConfig, TelemetryData, WarpSchedulerFactory,
};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// How a run executes its functional side (see `gpgpu_sim::record`).
#[derive(Debug, Clone, Default)]
pub enum RunMode {
    /// Plain execution: evaluate semantics, verify outputs.
    #[default]
    Direct,
    /// Direct execution that also captures an [`ExecRecord`]; outputs
    /// are byte-identical to [`RunMode::Direct`].
    Capture,
    /// Timing replay from a captured record: semantics are never
    /// evaluated and memory data is never touched, so output
    /// verification is skipped — the record's `mem_hash` stands in for
    /// the final memory contents.
    Replay(Arc<ExecRecord>),
}

/// Default cycle budget for harness runs.
pub const DEFAULT_MAX_CYCLES: u64 = 200_000_000;

/// Why a workload run failed.
#[derive(Debug)]
pub enum RunError {
    /// The simulator aborted.
    Sim(SimError),
    /// The kernel ran but produced wrong output.
    Verify(VerifyError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation failed: {e}"),
            RunError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            RunError::Verify(e) => Some(e),
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

impl From<VerifyError> for RunError {
    fn from(e: VerifyError) -> Self {
        RunError::Verify(e)
    }
}

/// The result of a completed, verified run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Full simulator statistics.
    pub stats: SimStats,
    /// Id of the workload's kernel.
    pub kernel: KernelId,
}

impl RunOutcome {
    /// The workload kernel's IPC.
    pub fn ipc(&self) -> f64 {
        self.stats
            .kernel(self.kernel)
            .map(|k| k.ipc())
            .unwrap_or(0.0)
    }

    /// The workload kernel's execution cycles.
    pub fn cycles(&self) -> u64 {
        self.stats
            .kernel(self.kernel)
            .map(|k| k.cycles())
            .unwrap_or(0)
    }
}

/// Runs `workload` to completion on a fresh device and verifies its
/// output.
///
/// # Errors
///
/// Returns [`RunError::Sim`] if the simulation deadlocks or exceeds
/// `max_cycles`, or [`RunError::Verify`] if the output is wrong.
pub fn run_workload(
    workload: &mut dyn Workload,
    cfg: GpuConfig,
    warp: &dyn WarpSchedulerFactory,
    cta: Box<dyn CtaScheduler>,
    max_cycles: u64,
) -> Result<RunOutcome, RunError> {
    run_workload_with_device(workload, cfg, warp, cta, max_cycles).map(|(o, _)| o)
}

/// As [`run_workload`], but also hands back the device for post-run
/// inspection (memory contents, scheduler state via
/// [`CtaScheduler::as_any`]).
///
/// # Errors
///
/// As [`run_workload`].
pub fn run_workload_with_device(
    workload: &mut dyn Workload,
    cfg: GpuConfig,
    warp: &dyn WarpSchedulerFactory,
    cta: Box<dyn CtaScheduler>,
    max_cycles: u64,
) -> Result<(RunOutcome, GpuDevice), RunError> {
    let mut gpu = GpuDevice::new(cfg, warp, cta);
    let desc = workload.prepare(gpu.mem());
    let kernel = gpu.launch(desc);
    gpu.run(max_cycles)?;
    workload.verify(gpu.mem_ref())?;
    let outcome = RunOutcome {
        stats: gpu.stats(),
        kernel,
    };
    Ok((outcome, gpu))
}

/// As [`run_workload_with_device`], with telemetry attached for the whole
/// run: interval samples and trace events are collected in memory and
/// returned alongside the outcome.
///
/// # Errors
///
/// As [`run_workload`] (telemetry from a failed run is discarded).
pub fn run_workload_traced(
    workload: &mut dyn Workload,
    cfg: GpuConfig,
    warp: &dyn WarpSchedulerFactory,
    cta: Box<dyn CtaScheduler>,
    max_cycles: u64,
    telemetry: TelemetryConfig,
) -> Result<(RunOutcome, GpuDevice, TelemetryData), RunError> {
    let mut gpu = GpuDevice::new(cfg, warp, cta);
    gpu.enable_telemetry(telemetry, Box::new(MemorySink::new()));
    let desc = workload.prepare(gpu.mem());
    let kernel = gpu.launch(desc);
    gpu.run(max_cycles)?;
    workload.verify(gpu.mem_ref())?;
    let outcome = RunOutcome {
        stats: gpu.stats(),
        kernel,
    };
    let data = gpu.take_telemetry_data().unwrap_or_default();
    Ok((outcome, gpu, data))
}

/// As [`run_workload_with_device`], parameterized over [`RunMode`] and
/// optional telemetry: the single entry point behind capture and replay
/// runs. Returns the outcome, the device, the telemetry data (when
/// `telemetry` was given), and the captured record (when `mode` was
/// [`RunMode::Capture`]).
///
/// # Errors
///
/// As [`run_workload`]; replay runs skip output verification.
pub fn run_workload_mode(
    workload: &mut dyn Workload,
    cfg: GpuConfig,
    warp: &dyn WarpSchedulerFactory,
    cta: Box<dyn CtaScheduler>,
    max_cycles: u64,
    telemetry: Option<TelemetryConfig>,
    mode: RunMode,
) -> Result<(RunOutcome, GpuDevice, Option<TelemetryData>, Option<ExecRecord>), RunError> {
    let mut gpu = GpuDevice::new(cfg, warp, cta);
    let replaying = match &mode {
        RunMode::Direct => false,
        RunMode::Capture => {
            gpu.set_capture(true);
            false
        }
        RunMode::Replay(rec) => {
            gpu.set_replay(Arc::clone(rec));
            true
        }
    };
    if let Some(t) = telemetry {
        gpu.enable_telemetry(t, Box::new(MemorySink::new()));
    }
    let desc = workload.prepare(gpu.mem());
    let kernel = gpu.launch(desc);
    gpu.run(max_cycles)?;
    if !replaying {
        workload.verify(gpu.mem_ref())?;
    }
    let outcome = RunOutcome {
        stats: gpu.stats(),
        kernel,
    };
    let data = gpu.take_telemetry_data();
    let record = gpu.take_record();
    Ok((outcome, gpu, data, record))
}

/// As [`run_pair`], parameterized over [`RunMode`] and optional
/// telemetry (see [`run_workload_mode`]).
///
/// # Errors
///
/// As [`run_workload`]; replay runs skip output verification.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
pub fn run_pair_mode(
    a: &mut dyn Workload,
    b: &mut dyn Workload,
    cfg: GpuConfig,
    warp: &dyn WarpSchedulerFactory,
    cta: Box<dyn CtaScheduler>,
    serial: bool,
    max_cycles: u64,
    telemetry: Option<TelemetryConfig>,
    mode: RunMode,
) -> Result<(SimStats, KernelId, KernelId, Option<TelemetryData>, Option<ExecRecord>), RunError> {
    let mut gpu = GpuDevice::new(cfg, warp, cta);
    let replaying = match &mode {
        RunMode::Direct => false,
        RunMode::Capture => {
            gpu.set_capture(true);
            false
        }
        RunMode::Replay(rec) => {
            gpu.set_replay(Arc::clone(rec));
            true
        }
    };
    if let Some(t) = telemetry {
        gpu.enable_telemetry(t, Box::new(MemorySink::new()));
    }
    let desc_a = a.prepare(gpu.mem());
    let desc_b = b.prepare(gpu.mem());
    let ka = gpu.launch(desc_a);
    let kb = if serial {
        gpu.launch_after(desc_b, ka)
    } else {
        gpu.launch(desc_b)
    };
    gpu.run(max_cycles)?;
    if !replaying {
        a.verify(gpu.mem_ref())?;
        b.verify(gpu.mem_ref())?;
    }
    let data = gpu.take_telemetry_data();
    let record = gpu.take_record();
    Ok((gpu.stats(), ka, kb, data, record))
}

/// Runs two workloads concurrently (both launched at cycle 0) and verifies
/// both. Returns the outcome with total cycles and both kernels' stats.
///
/// # Errors
///
/// As [`run_workload`].
pub fn run_pair(
    a: &mut dyn Workload,
    b: &mut dyn Workload,
    cfg: GpuConfig,
    warp: &dyn WarpSchedulerFactory,
    cta: Box<dyn CtaScheduler>,
    serial: bool,
    max_cycles: u64,
) -> Result<(SimStats, KernelId, KernelId), RunError> {
    let mut gpu = GpuDevice::new(cfg, warp, cta);
    let desc_a = a.prepare(gpu.mem());
    let desc_b = b.prepare(gpu.mem());
    let ka = gpu.launch(desc_a);
    let kb = if serial {
        gpu.launch_after(desc_b, ka)
    } else {
        gpu.launch(desc_b)
    };
    gpu.run(max_cycles)?;
    a.verify(gpu.mem_ref())?;
    b.verify(gpu.mem_ref())?;
    Ok((gpu.stats(), ka, kb))
}

/// As [`run_pair`], with telemetry attached for the whole run.
///
/// # Errors
///
/// As [`run_workload`] (telemetry from a failed run is discarded).
#[allow(clippy::too_many_arguments)]
pub fn run_pair_traced(
    a: &mut dyn Workload,
    b: &mut dyn Workload,
    cfg: GpuConfig,
    warp: &dyn WarpSchedulerFactory,
    cta: Box<dyn CtaScheduler>,
    serial: bool,
    max_cycles: u64,
    telemetry: TelemetryConfig,
) -> Result<(SimStats, KernelId, KernelId, TelemetryData), RunError> {
    let mut gpu = GpuDevice::new(cfg, warp, cta);
    gpu.enable_telemetry(telemetry, Box::new(MemorySink::new()));
    let desc_a = a.prepare(gpu.mem());
    let desc_b = b.prepare(gpu.mem());
    let ka = gpu.launch(desc_a);
    let kb = if serial {
        gpu.launch_after(desc_b, ka)
    } else {
        gpu.launch(desc_b)
    };
    gpu.run(max_cycles)?;
    a.verify(gpu.mem_ref())?;
    b.verify(gpu.mem_ref())?;
    let data = gpu.take_telemetry_data().unwrap_or_default();
    Ok((gpu.stats(), ka, kb, data))
}
