//! BCS — block CTA scheduling (the paper's second mechanism).
//!
//! Consecutive CTAs frequently touch adjacent data: row-neighbouring tiles
//! in dense kernels, shared halo regions in stencils, the same DRAM rows in
//! streaming kernels. The baseline round-robin dispatcher scatters
//! consecutive CTAs across cores, turning that sharing into cross-core
//! redundancy. BCS instead dispatches *blocks* of `block_size` consecutive
//! CTAs to one core, waiting until the core has room for the whole block.
//!
//! BCS is paired with the block-aware warp scheduler
//! ([`Baws`](crate::warp_sched::Baws)), which keeps the CTAs of a block
//! advancing together so their shared lines are touched close in time.

use gpgpu_sim::{CtaScheduler, Dispatch, DispatchView, PolicyDecision};

/// The BCS CTA scheduler.
#[derive(Debug)]
pub struct Bcs {
    block_size: u32,
    cursor: usize,
    trace: bool,
    trace_buf: Vec<PolicyDecision>,
}

impl Bcs {
    /// BCS with the paper's default block size of 2.
    pub fn new() -> Self {
        Self::with_block_size(2)
    }

    /// BCS with an explicit block size (the E9 sensitivity knob;
    /// `block_size = 1` degenerates to the round-robin baseline).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is 0.
    pub fn with_block_size(block_size: u32) -> Self {
        assert!(block_size >= 1, "block size must be at least 1");
        Bcs {
            block_size,
            cursor: 0,
            trace: false,
            trace_buf: Vec::new(),
        }
    }

    /// The configured block size.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }
}

impl Default for Bcs {
    fn default() -> Self {
        Self::new()
    }
}

impl CtaScheduler for Bcs {
    fn name(&self) -> &str {
        "bcs"
    }

    fn select(&mut self, view: &DispatchView<'_>) -> Option<Dispatch> {
        let n = view.num_cores();
        for k in view.kernels() {
            // The tail of the grid may be smaller than a block.
            let want = self.block_size.min(k.remaining.min(u64::from(u32::MAX)) as u32);
            if want == 0 {
                continue;
            }
            for i in 0..n {
                let core = (self.cursor + i) % n;
                // Wait for room for the WHOLE block: partial placement
                // would split consecutive CTAs across cores.
                if view.core(core).capacity_for(k.id) < want {
                    continue;
                }
                self.cursor = (core + 1) % n;
                if self.trace {
                    self.trace_buf.push(PolicyDecision {
                        core,
                        kernel: k.id,
                        action: "bcs-block",
                        value: u64::from(want),
                    });
                }
                return Some(Dispatch {
                    core,
                    kernel: k.id,
                    count: want,
                });
            }
            // Degenerate configurations (a CTA-residency limit or per-CTA
            // resource demand below the block size) can make a full block
            // unfittable on ANY core, ever: a completely idle core holds
            // the largest capacity this kernel will ever see, so if even
            // one of those is too small, waiting would deadlock the
            // device. Dispatch a clamped block there instead. Ordinary
            // configurations never reach this: an idle core that could
            // fit the block was already taken by the scan above.
            let clamped = (0..n)
                .map(|i| (self.cursor + i) % n)
                .filter(|&c| view.core(c).cta_count == 0)
                .map(|c| (c, view.core(c).capacity_for(k.id)))
                .max_by_key(|&(_, cap)| cap)
                .filter(|&(_, cap)| cap >= 1);
            if let Some((core, cap)) = clamped {
                self.cursor = (core + 1) % n;
                if self.trace {
                    self.trace_buf.push(PolicyDecision {
                        core,
                        kernel: k.id,
                        action: "bcs-clamped-block",
                        value: u64::from(cap),
                    });
                }
                return Some(Dispatch {
                    core,
                    kernel: k.id,
                    count: cap,
                });
            }
        }
        None
    }

    fn set_trace_enabled(&mut self, on: bool) {
        self.trace = on;
        if !on {
            self.trace_buf.clear();
        }
    }

    fn take_trace_events(&mut self) -> Vec<PolicyDecision> {
        std::mem::take(&mut self.trace_buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_sim::{CoreDispatchInfo, KernelId, KernelSummary};

    fn summary(remaining: u64) -> Vec<KernelSummary> {
        vec![KernelSummary {
            id: KernelId(0),
            next_cta: 0,
            remaining,
            total_ctas: remaining,
            warps_per_cta: 4,
        }]
    }

    fn cores(caps: &[u32]) -> Vec<CoreDispatchInfo> {
        caps.iter()
            .map(|&cap| CoreDispatchInfo {
                cta_count: 8 - cap.min(8),
                kernel_ctas: vec![(KernelId(0), 8 - cap.min(8))],
                capacity: vec![(KernelId(0), cap)],
                completed: vec![(KernelId(0), 0)],
            })
            .collect()
    }

    #[test]
    fn dispatches_whole_blocks() {
        let kernels = summary(100);
        let infos = cores(&[8, 8]);
        let view = DispatchView::new(0, &kernels, &infos);
        let mut b = Bcs::new();
        let d = b.select(&view).unwrap();
        assert_eq!(d.count, 2);
        assert_eq!(d.core, 0);
        let d = b.select(&view).unwrap();
        assert_eq!(d.core, 1, "round-robins across cores");
    }

    #[test]
    fn waits_for_room_for_full_block() {
        let kernels = summary(100);
        let infos = cores(&[1, 1]);
        let view = DispatchView::new(0, &kernels, &infos);
        let mut b = Bcs::new();
        assert_eq!(b.select(&view), None, "1 free slot < block of 2");
        let infos = cores(&[1, 2]);
        let view = DispatchView::new(0, &kernels, &infos);
        assert_eq!(b.select(&view).unwrap().core, 1);
    }

    #[test]
    fn tail_smaller_than_block_still_dispatches() {
        let kernels = summary(1);
        let infos = cores(&[8]);
        let view = DispatchView::new(0, &kernels, &infos);
        let mut b = Bcs::new();
        let d = b.select(&view).unwrap();
        assert_eq!(d.count, 1);
    }

    #[test]
    fn block_size_one_is_round_robin() {
        let kernels = summary(100);
        let infos = cores(&[8, 8, 8]);
        let view = DispatchView::new(0, &kernels, &infos);
        let mut b = Bcs::with_block_size(1);
        let picks: Vec<usize> = (0..3).map(|_| b.select(&view).unwrap().core).collect();
        assert_eq!(picks, vec![0, 1, 2]);
    }

    #[test]
    fn larger_blocks() {
        let kernels = summary(100);
        let infos = cores(&[3, 4]);
        let view = DispatchView::new(0, &kernels, &infos);
        let mut b = Bcs::with_block_size(4);
        let d = b.select(&view).unwrap();
        assert_eq!((d.core, d.count), (1, 4));
    }

    /// Found by the simcheck fuzzer: with a residency limit below the
    /// block size, no core can EVER fit a whole block, and waiting for one
    /// deadlocks the device. An idle core must get a clamped block.
    #[test]
    fn unfittable_block_clamps_instead_of_starving() {
        let kernels = summary(3);
        // Two fully idle cores whose maximum capacity is 1 (< block of 2).
        let infos: Vec<CoreDispatchInfo> = (0..2)
            .map(|_| CoreDispatchInfo {
                cta_count: 0,
                kernel_ctas: vec![(KernelId(0), 0)],
                capacity: vec![(KernelId(0), 1)],
                completed: vec![(KernelId(0), 0)],
            })
            .collect();
        let view = DispatchView::new(0, &kernels, &infos);
        let mut b = Bcs::new();
        let d = b.select(&view).expect("must not starve the kernel");
        assert_eq!(d.count, 1, "block clamped to the best idle capacity");
        // Busy cores (nonzero residency) still make BCS wait: transient
        // fullness is not the degenerate case.
        let infos = cores(&[1, 1]);
        let view = DispatchView::new(0, &kernels, &infos);
        assert_eq!(b.select(&view), None);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        let _ = Bcs::with_block_size(0);
    }
}
