//! Validated instruction sequences.

use crate::instr::{Instr, Instruction};
use crate::types::{ExecClass, Pc, Pred, Reg};
use std::error::Error;
use std::fmt;

/// A validated, immutable SIMT program.
///
/// Programs are normally produced by [`KernelBuilder`](crate::KernelBuilder),
/// which guarantees structured control flow; [`Program::from_instructions`]
/// performs the checks that can be verified without control-flow analysis
/// (branch targets in range, register indices within bounds, a terminating
/// `Exit` reachable by fallthrough).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    instrs: Vec<Instruction>,
    reg_count: u8,
    pred_count: u8,
    param_count: u8,
}

/// Why a program failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The instruction list was empty.
    Empty,
    /// A branch target or reconvergence PC was out of range.
    BadTarget {
        /// Instruction index of the offending branch.
        pc: Pc,
        /// The invalid target.
        target: Pc,
    },
    /// The last instruction can fall through past the end of the program.
    NoTerminator,
    /// More registers were used than the register file allows (64).
    TooManyRegs {
        /// Number of registers required.
        needed: u16,
    },
    /// More predicates were used than allowed (8).
    TooManyPreds {
        /// Number of predicates required.
        needed: u16,
    },
    /// More parameters were referenced than allowed (32).
    TooManyParams {
        /// Number of parameter slots required.
        needed: u16,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::BadTarget { pc, target } => {
                write!(f, "branch at pc {pc} targets out-of-range pc {target}")
            }
            ProgramError::NoTerminator => {
                write!(f, "last instruction may fall through past the end")
            }
            ProgramError::TooManyRegs { needed } => {
                write!(f, "program needs {needed} registers, limit is 64")
            }
            ProgramError::TooManyPreds { needed } => {
                write!(f, "program needs {needed} predicates, limit is 8")
            }
            ProgramError::TooManyParams { needed } => {
                write!(f, "program references {needed} parameter slots, limit is 32")
            }
        }
    }
}

impl Error for ProgramError {}

/// Maximum architectural registers per thread.
pub(crate) const MAX_REGS: u16 = 64;
/// Maximum predicate registers per thread.
pub(crate) const MAX_PREDS: u16 = 8;
/// Maximum kernel parameter slots.
pub(crate) const MAX_PARAMS: u16 = 32;

impl Program {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the sequence is empty, a branch target
    /// is out of range, register/predicate/parameter indices exceed the
    /// architectural limits, or the final instruction can fall through.
    pub fn from_instructions(
        name: impl Into<String>,
        instrs: Vec<Instruction>,
    ) -> Result<Self, ProgramError> {
        if instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        let len = instrs.len() as Pc;
        let mut max_reg: u16 = 0;
        let mut max_pred: u16 = 0;
        let mut max_param: u16 = 0;
        let mut track_reg = |r: Reg| {
            max_reg = max_reg.max(u16::from(r.0) + 1);
        };
        for (pc, ins) in instrs.iter().enumerate() {
            let pc = pc as Pc;
            if let Some(g) = &ins.guard {
                max_pred = max_pred.max(u16::from(g.pred.0) + 1);
            }
            if let Some(d) = ins.dst_reg() {
                track_reg(d);
            }
            for s in ins.src_regs() {
                track_reg(s);
            }
            let mut track_pred = |p: Pred| {
                max_pred = max_pred.max(u16::from(p.0) + 1);
            };
            match &ins.op {
                Instr::Bra { target } => {
                    if *target >= len {
                        return Err(ProgramError::BadTarget {
                            pc,
                            target: *target,
                        });
                    }
                }
                Instr::BraCond {
                    pred,
                    target,
                    reconv,
                    ..
                } => {
                    track_pred(*pred);
                    if *target >= len {
                        return Err(ProgramError::BadTarget {
                            pc,
                            target: *target,
                        });
                    }
                    if *reconv >= len {
                        return Err(ProgramError::BadTarget {
                            pc,
                            target: *reconv,
                        });
                    }
                }
                Instr::SetP { dst, .. } => track_pred(*dst),
                Instr::PBool { dst, a, b, .. } => {
                    track_pred(*dst);
                    track_pred(*a);
                    track_pred(*b);
                }
                Instr::Sel { pred, .. } => track_pred(*pred),
                Instr::Param { index, .. } => {
                    max_param = max_param.max(u16::from(*index) + 1);
                }
                _ => {}
            }
        }
        // The last instruction must not fall through: it must be an Exit or
        // an unconditional branch. (A guarded Exit could fall through.)
        let last = instrs.last().expect("nonempty");
        let terminates = match &last.op {
            Instr::Exit => last.guard.is_none(),
            Instr::Bra { .. } => true,
            _ => false,
        };
        if !terminates {
            return Err(ProgramError::NoTerminator);
        }
        if max_reg > MAX_REGS {
            return Err(ProgramError::TooManyRegs { needed: max_reg });
        }
        if max_pred > MAX_PREDS {
            return Err(ProgramError::TooManyPreds { needed: max_pred });
        }
        if max_param > MAX_PARAMS {
            return Err(ProgramError::TooManyParams { needed: max_param });
        }
        Ok(Program {
            name: name.into(),
            instrs,
            reg_count: max_reg as u8,
            pred_count: max_pred as u8,
            param_count: max_param as u8,
        })
    }

    /// The program's name (for reports and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true for a validated program).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn fetch(&self, pc: Pc) -> &Instruction {
        &self.instrs[pc as usize]
    }

    /// All instructions in order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Number of architectural registers this program uses per thread.
    pub fn reg_count(&self) -> u8 {
        self.reg_count
    }

    /// Number of predicate registers this program uses per thread.
    pub fn pred_count(&self) -> u8 {
        self.pred_count
    }

    /// Number of parameter slots the program reads.
    pub fn param_count(&self) -> u8 {
        self.param_count
    }

    /// Static instruction-mix statistics.
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats::default();
        for ins in &self.instrs {
            s.total += 1;
            match ins.exec_class() {
                ExecClass::IntAlu => s.int_alu += 1,
                ExecClass::FpAlu => s.fp_alu += 1,
                ExecClass::Sfu => s.sfu += 1,
                ExecClass::MemGlobal => {
                    if matches!(ins.op, Instr::Ld { .. }) {
                        s.global_loads += 1;
                    } else {
                        s.global_stores += 1;
                    }
                }
                ExecClass::MemShared => s.shared_mem += 1,
                ExecClass::Ctrl => s.control += 1,
                ExecClass::Barrier => s.barriers += 1,
                ExecClass::Exit => s.exits += 1,
            }
        }
        s
    }

    /// A multi-line disassembly listing.
    pub fn disassemble(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (pc, ins) in self.instrs.iter().enumerate() {
            let _ = writeln!(out, "{pc:4}: {ins}");
        }
        out
    }

    /// Whether any instruction reads operands through immediates only —
    /// helper for tests: returns true if a register `r` is read anywhere.
    pub fn reads_reg(&self, r: Reg) -> bool {
        self.instrs.iter().any(|i| i.src_regs().contains(&r))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} instrs)", self.name, self.instrs.len())
    }
}

/// Static instruction-mix counts for a [`Program`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Total static instructions.
    pub total: usize,
    /// Integer-ALU-class instructions.
    pub int_alu: usize,
    /// Floating-point-ALU instructions.
    pub fp_alu: usize,
    /// SFU instructions.
    pub sfu: usize,
    /// Global loads.
    pub global_loads: usize,
    /// Global stores.
    pub global_stores: usize,
    /// Shared-memory accesses.
    pub shared_mem: usize,
    /// Control-flow instructions.
    pub control: usize,
    /// Barriers.
    pub barriers: usize,
    /// Exit instructions.
    pub exits: usize,
}

/// A convenience free function used across tests: a trivially valid program
/// consisting of a single `Exit`.
pub fn exit_only(name: &str) -> Program {
    Program::from_instructions(name, vec![Instruction::new(Instr::Exit)])
        .expect("exit-only program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AluOp, Operand};

    fn exit() -> Instruction {
        Instruction::new(Instr::Exit)
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Program::from_instructions("e", vec![]).unwrap_err(),
            ProgramError::Empty
        );
    }

    #[test]
    fn exit_only_valid() {
        let p = exit_only("t");
        assert_eq!(p.len(), 1);
        assert_eq!(p.reg_count(), 0);
        assert!(!p.is_empty());
    }

    #[test]
    fn bad_branch_target_rejected() {
        let p = Program::from_instructions(
            "t",
            vec![
                Instruction::new(Instr::Bra { target: 9 }),
                exit(),
            ],
        );
        assert!(matches!(p, Err(ProgramError::BadTarget { pc: 0, target: 9 })));
    }

    #[test]
    fn bad_reconv_rejected() {
        let p = Program::from_instructions(
            "t",
            vec![
                Instruction::new(Instr::BraCond {
                    pred: Pred(0),
                    neg: false,
                    target: 1,
                    reconv: 7,
                }),
                exit(),
            ],
        );
        assert!(matches!(p, Err(ProgramError::BadTarget { .. })));
    }

    #[test]
    fn fallthrough_end_rejected() {
        let p = Program::from_instructions(
            "t",
            vec![Instruction::new(Instr::Mov {
                dst: Reg(0),
                src: Operand::Imm(1),
            })],
        );
        assert_eq!(p.unwrap_err(), ProgramError::NoTerminator);
        // A guarded Exit can fall through too.
        let p = Program::from_instructions(
            "t",
            vec![Instruction::guarded(Instr::Exit, Pred(0), true)],
        );
        assert_eq!(p.unwrap_err(), ProgramError::NoTerminator);
    }

    #[test]
    fn resource_counts() {
        let p = Program::from_instructions(
            "t",
            vec![
                Instruction::new(Instr::Alu {
                    op: AluOp::IAdd,
                    dst: Reg(5),
                    a: Operand::Reg(Reg(2)),
                    b: Operand::Imm(1),
                    c: Operand::Imm(0),
                }),
                Instruction::new(Instr::SetP {
                    dst: Pred(3),
                    cmp: crate::CmpOp::Lt,
                    ty: crate::CmpTy::U64,
                    a: Operand::Reg(Reg(5)),
                    b: Operand::Imm(10),
                }),
                Instruction::new(Instr::Param {
                    dst: Reg(0),
                    index: 4,
                }),
                exit(),
            ],
        )
        .unwrap();
        assert_eq!(p.reg_count(), 6);
        assert_eq!(p.pred_count(), 4);
        assert_eq!(p.param_count(), 5);
        assert!(p.reads_reg(Reg(2)));
        assert!(!p.reads_reg(Reg(9)));
    }

    #[test]
    fn stats_counts_classes() {
        let p = Program::from_instructions(
            "t",
            vec![
                Instruction::new(Instr::Alu {
                    op: AluOp::FAdd,
                    dst: Reg(0),
                    a: Operand::Imm(0),
                    b: Operand::Imm(0),
                    c: Operand::Imm(0),
                }),
                Instruction::new(Instr::Bar),
                exit(),
            ],
        )
        .unwrap();
        let s = p.stats();
        assert_eq!(s.total, 3);
        assert_eq!(s.fp_alu, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.exits, 1);
    }

    #[test]
    fn disassembly_lines() {
        let p = exit_only("t");
        assert!(p.disassemble().contains("EXIT"));
        assert_eq!(p.to_string(), "t (1 instrs)");
    }
}
