//! Convenience constructors pairing warp and CTA policies by name, used by
//! the experiment harness, examples, and tests.

use crate::bcs::Bcs;
use crate::cke::{LeftoverCke, MixedCke};
use crate::cta_sched::RoundRobinCta;
use crate::dyncta::Dyncta;
use crate::lcs::Lcs;
use crate::warp_sched::{BawsFactory, GtoFactory, LrrFactory, TwoLevelFactory};
use gpgpu_sim::{CtaScheduler, WarpSchedulerFactory};
use std::fmt;

/// Warp-scheduler choices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarpPolicy {
    /// Loose round-robin.
    Lrr,
    /// Greedy-then-oldest (the reference scheduler and LCS's sensor).
    Gto,
    /// Two-level with the given active-set size.
    TwoLevel(usize),
    /// Block-aware (pairs with BCS) with the given CTA-block size.
    Baws(u32),
}

impl WarpPolicy {
    /// Builds the factory for this policy.
    pub fn factory(self) -> Box<dyn WarpSchedulerFactory> {
        match self {
            WarpPolicy::Lrr => Box::new(LrrFactory),
            WarpPolicy::Gto => Box::new(GtoFactory),
            WarpPolicy::TwoLevel(n) => Box::new(TwoLevelFactory { active_size: n }),
            WarpPolicy::Baws(b) => Box::new(BawsFactory { block_size: b }),
        }
    }
}

impl fmt::Display for WarpPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarpPolicy::Lrr => write!(f, "lrr"),
            WarpPolicy::Gto => write!(f, "gto"),
            WarpPolicy::TwoLevel(n) => write!(f, "two-level({n})"),
            WarpPolicy::Baws(b) => write!(f, "baws({b})"),
        }
    }
}

/// CTA-scheduler choices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CtaPolicy {
    /// Round-robin baseline, optionally with a static per-core CTA limit.
    Baseline(Option<u32>),
    /// Lazy CTA scheduling with the given `gamma` threshold.
    Lcs(f64),
    /// Block CTA scheduling with the given block size.
    Bcs(u32),
    /// Core-exclusive ("leftover") concurrent kernel execution.
    LeftoverCke,
    /// Mixed concurrent kernel execution with the given LCS `gamma`.
    MixedCke(f64),
    /// Continuously-adaptive throttling (related-work comparator).
    Dyncta,
}

impl CtaPolicy {
    /// Builds the scheduler for this policy.
    pub fn scheduler(self) -> Box<dyn CtaScheduler> {
        match self {
            CtaPolicy::Baseline(None) => Box::new(RoundRobinCta::new()),
            CtaPolicy::Baseline(Some(n)) => Box::new(RoundRobinCta::with_limit(n)),
            CtaPolicy::Lcs(gamma) => Box::new(Lcs::with_gamma(gamma)),
            CtaPolicy::Bcs(b) => Box::new(Bcs::with_block_size(b)),
            CtaPolicy::LeftoverCke => Box::new(LeftoverCke::new()),
            CtaPolicy::MixedCke(gamma) => Box::new(MixedCke::with_gamma(gamma)),
            CtaPolicy::Dyncta => Box::new(Dyncta::new()),
        }
    }
}

impl fmt::Display for CtaPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtaPolicy::Baseline(None) => write!(f, "baseline"),
            CtaPolicy::Baseline(Some(n)) => write!(f, "baseline(limit={n})"),
            CtaPolicy::Lcs(g) => write!(f, "lcs(gamma={g})"),
            CtaPolicy::Bcs(b) => write!(f, "bcs(block={b})"),
            CtaPolicy::LeftoverCke => write!(f, "leftover-cke"),
            CtaPolicy::MixedCke(g) => write!(f, "mixed-cke(gamma={g})"),
            CtaPolicy::Dyncta => write!(f, "dyncta"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_resolve() {
        assert_eq!(WarpPolicy::Lrr.factory().name(), "lrr");
        assert_eq!(WarpPolicy::Gto.factory().name(), "gto");
        assert_eq!(WarpPolicy::TwoLevel(8).factory().name(), "two-level");
        assert_eq!(WarpPolicy::Baws(2).factory().name(), "baws");
    }

    #[test]
    fn schedulers_resolve() {
        assert_eq!(CtaPolicy::Baseline(None).scheduler().name(), "rr");
        assert_eq!(CtaPolicy::Baseline(Some(2)).scheduler().name(), "rr");
        assert_eq!(CtaPolicy::Lcs(0.7).scheduler().name(), "lcs");
        assert_eq!(CtaPolicy::Bcs(2).scheduler().name(), "bcs");
        assert_eq!(CtaPolicy::LeftoverCke.scheduler().name(), "leftover-cke");
        assert_eq!(CtaPolicy::MixedCke(0.7).scheduler().name(), "mixed-cke");
        assert_eq!(CtaPolicy::Dyncta.scheduler().name(), "dyncta");
    }

    #[test]
    fn display_strings() {
        assert_eq!(WarpPolicy::Gto.to_string(), "gto");
        assert_eq!(CtaPolicy::Bcs(2).to_string(), "bcs(block=2)");
        assert_eq!(
            CtaPolicy::Baseline(Some(4)).to_string(),
            "baseline(limit=4)"
        );
    }
}
