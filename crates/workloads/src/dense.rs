//! Dense-matrix workloads: shared-memory-tiled matrix multiply
//! (`matmul-tiled`), the cache-sensitive untiled variant
//! (`matmul-naive`), and a naive matrix transpose (`transpose`).
//!
//! `matmul-naive` is a canonical LCS winner: each resident CTA streams
//! matrix rows through the L1, so beyond a few CTAs the working sets evict
//! each other and adding occupancy *hurts*.

use crate::common::{first_mismatch_f32, VerifyError, Workload, WorkloadClass};
use gpgpu_isa::{AluOp, Dim2, KernelBuilder, KernelDescriptor, SpecialReg};
use gpgpu_sim::GlobalMem;
use std::sync::Arc;

/// Tile edge for the tiled multiply (16×16 threads = 256 per CTA).
const TILE: u32 = 16;

fn matrix(n: u32, f: impl Fn(u32, u32) -> f32) -> Vec<f32> {
    (0..n * n).map(|i| f(i / n, i % n)).collect()
}

/// C = A×B with `TILE`×`TILE` shared-memory tiles, barriers between tile
/// phases, and an unrolled inner product. The classic GPGPU kernel:
/// compute-heavy with high shared-memory traffic.
#[derive(Debug)]
pub struct MatMulTiled {
    n: u32,
    bufs: Option<(u64, u64, u64)>,
}

impl MatMulTiled {
    /// A tiled multiply of `n`×`n` matrices.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of 16.
    pub fn new(n: u32) -> Self {
        assert!(n >= TILE && n % TILE == 0, "n must be a multiple of 16");
        MatMulTiled { n, bufs: None }
    }
}

impl Workload for MatMulTiled {
    fn name(&self) -> &str {
        "matmul-tiled"
    }

    fn class(&self) -> WorkloadClass {
        WorkloadClass::Compute
    }

    fn prepare(&mut self, gmem: &mut GlobalMem) -> KernelDescriptor {
        let n = self.n;
        let bytes = u64::from(n) * u64::from(n) * 4;
        let a = gmem.alloc(bytes);
        let b = gmem.alloc(bytes);
        let c = gmem.alloc(bytes);
        gmem.write_f32_slice(a, &matrix(n, |r, cc| ((r + cc) % 13) as f32 * 0.25));
        gmem.write_f32_slice(b, &matrix(n, |r, cc| ((r * 3 + cc) % 11) as f32 * 0.5));
        self.bufs = Some((a, b, c));

        let mut k = KernelBuilder::new("matmul-tiled", Dim2::new(TILE, TILE));
        let pa = k.param(0);
        let pb = k.param(1);
        let pc = k.param(2);
        let pn = k.param(3);
        let tx = k.special(SpecialReg::TidX);
        let ty = k.special(SpecialReg::TidY);
        let bx = k.special(SpecialReg::CtaIdX);
        let by = k.special(SpecialReg::CtaIdY);
        let row = k.imad(by, u64::from(TILE), ty);
        let col = k.imad(bx, u64::from(TILE), tx);
        let acc = k.movi(0.0f32);
        // Shared layout: sA at 0, sB at TILE*TILE*4.
        let s_b_base_off = u64::from(TILE * TILE * 4);
        // Per-thread shared addresses (constant across tiles).
        let ty_t = k.imul(ty, u64::from(TILE));
        let lin = k.iadd(ty_t, tx);
        let s_store = k.shl(lin, 2u64); // (ty*T + tx) * 4
        // sA row base for the inner product: (ty*T)*4, read with offset kk*4.
        let sa_row = k.shl(ty_t, 2u64);
        // sB column base: tx*4 + s_b_base, read with offset kk*T*4.
        let tx4 = k.shl(tx, 2u64);
        let sb_col = k.iadd(tx4, s_b_base_off);
        // Global strides.
        let row_n = k.imul(row, pn); // row * n
        let n_tiles = k.shr(pn, 4u64);
        let va = k.reg();
        let vb = k.reg();
        k.for_range(0u64, n_tiles, 1u64, |k, t| {
            let t_t = k.imul(t, u64::from(TILE));
            // A[row][t*T + tx]
            let a_col = k.iadd(t_t, tx);
            let a_idx = k.iadd(row_n, a_col);
            let a_off = k.shl(a_idx, 2u64);
            let ea = k.iadd(pa, a_off);
            k.ld_global_u32_to(va, ea, 0);
            k.st_shared_u32(va, s_store, 0);
            // B[t*T + ty][col]
            let b_row = k.iadd(t_t, ty);
            let b_rn = k.imul(b_row, pn);
            let b_idx = k.iadd(b_rn, col);
            let b_off = k.shl(b_idx, 2u64);
            let eb = k.iadd(pb, b_off);
            k.ld_global_u32_to(vb, eb, 0);
            let sb_store = k.iadd(s_store, s_b_base_off);
            k.st_shared_u32(vb, sb_store, 0);
            k.bar();
            // Unrolled inner product over the tile.
            for kk in 0..TILE {
                k.ld_shared_u32_to(va, sa_row, i64::from(kk * 4));
                k.ld_shared_u32_to(vb, sb_col, i64::from(kk * TILE * 4));
                k.alu3_to(AluOp::FFma, acc, va, vb, acc);
            }
            k.bar();
        });
        let c_idx = k.iadd(row_n, col);
        let c_off = k.shl(c_idx, 2u64);
        let ec = k.iadd(pc, c_off);
        k.st_global_u32(acc, ec, 0);
        let prog = Arc::new(k.build().expect("matmul-tiled is well-formed"));
        KernelDescriptor::builder(
            prog,
            Dim2::new(n / TILE, n / TILE),
            Dim2::new(TILE, TILE),
        )
        .smem_per_cta(2 * TILE * TILE * 4)
        .params([a, b, c, u64::from(n)])
        .build()
        .expect("valid launch")
    }

    fn verify(&self, gmem: &GlobalMem) -> Result<(), VerifyError> {
        let (a, b, c) = self.bufs.expect("prepare() ran");
        let n = self.n as usize;
        let av = gmem.read_f32_vec(a, n * n);
        let bv = gmem.read_f32_vec(b, n * n);
        let got = gmem.read_f32_vec(c, n * n);
        let mut expect = vec![0.0f32; n * n];
        for r in 0..n {
            for cc in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..n {
                    acc = av[r * n + kk].mul_add(bv[kk * n + cc], acc);
                }
                expect[r * n + cc] = acc;
            }
        }
        match first_mismatch_f32(&expect, &got) {
            None => Ok(()),
            Some((i, e, g)) => Err(VerifyError {
                workload: self.name().into(),
                detail: format!("C[{i}] = {g}, expected {e}"),
            }),
        }
    }
}

/// C = A×B straight from global memory (no tiling): every thread streams a
/// row of A and a column of B through the L1. Compute/stream-bound at
/// scale; consecutive CTAs along a grid row share their A rows, which BCS
/// pairing exploits.
#[derive(Debug)]
pub struct MatMulNaive {
    n: u32,
    bufs: Option<(u64, u64, u64)>,
}

impl MatMulNaive {
    /// An untiled multiply of `n`×`n` matrices.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of 32.
    pub fn new(n: u32) -> Self {
        assert!(n >= 32 && n % 32 == 0, "n must be a multiple of 32");
        MatMulNaive { n, bufs: None }
    }
}

impl Workload for MatMulNaive {
    fn name(&self) -> &str {
        "matmul-naive"
    }

    fn class(&self) -> WorkloadClass {
        WorkloadClass::Compute
    }

    fn prepare(&mut self, gmem: &mut GlobalMem) -> KernelDescriptor {
        let n = self.n;
        let bytes = u64::from(n) * u64::from(n) * 4;
        let a = gmem.alloc(bytes);
        let b = gmem.alloc(bytes);
        let c = gmem.alloc(bytes);
        gmem.write_f32_slice(a, &matrix(n, |r, cc| ((r + 2 * cc) % 7) as f32 * 0.5));
        gmem.write_f32_slice(b, &matrix(n, |r, cc| ((2 * r + cc) % 9) as f32 * 0.25));
        self.bufs = Some((a, b, c));

        // Block (32, 4): warps span a row fragment (coalesced B columns).
        let mut k = KernelBuilder::new("matmul-naive", Dim2::new(32, 4));
        let pa = k.param(0);
        let pb = k.param(1);
        let pc = k.param(2);
        let pn = k.param(3);
        let tx = k.special(SpecialReg::TidX);
        let ty = k.special(SpecialReg::TidY);
        let bx = k.special(SpecialReg::CtaIdX);
        let by = k.special(SpecialReg::CtaIdY);
        let col = k.imad(bx, 32u64, tx);
        let row = k.imad(by, 4u64, ty);
        let row_n = k.imul(row, pn);
        let acc = k.movi(0.0f32);
        let va = k.reg();
        let vb = k.reg();
        let ea = k.reg();
        let eb = k.reg();
        // ea = pa + row*n*4 (advance by 4 per k); eb = pb + col*4 (advance
        // by n*4 per k).
        let row_n4 = k.shl(row_n, 2u64);
        k.alu_to(AluOp::IAdd, ea, pa, row_n4);
        let col4 = k.shl(col, 2u64);
        k.alu_to(AluOp::IAdd, eb, pb, col4);
        let n4 = k.shl(pn, 2u64);
        k.for_range(0u64, pn, 1u64, |k, _kk| {
            k.ld_global_u32_to(va, ea, 0);
            k.ld_global_u32_to(vb, eb, 0);
            k.alu3_to(AluOp::FFma, acc, va, vb, acc);
            k.alu_to(AluOp::IAdd, ea, ea, 4u64);
            k.alu_to(AluOp::IAdd, eb, eb, n4);
        });
        let c_idx = k.iadd(row_n, col);
        let c_off = k.shl(c_idx, 2u64);
        let ec = k.iadd(pc, c_off);
        k.st_global_u32(acc, ec, 0);
        let prog = Arc::new(k.build().expect("matmul-naive is well-formed"));
        KernelDescriptor::builder(prog, Dim2::new(n / 32, n / 4), Dim2::new(32, 4))
            .params([a, b, c, u64::from(n)])
            .build()
            .expect("valid launch")
    }

    fn verify(&self, gmem: &GlobalMem) -> Result<(), VerifyError> {
        let (a, b, c) = self.bufs.expect("prepare() ran");
        let n = self.n as usize;
        let av = gmem.read_f32_vec(a, n * n);
        let bv = gmem.read_f32_vec(b, n * n);
        let got = gmem.read_f32_vec(c, n * n);
        for r in 0..n {
            for cc in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..n {
                    acc = av[r * n + kk].mul_add(bv[kk * n + cc], acc);
                }
                if !crate::common::f32_close(acc, got[r * n + cc]) {
                    return Err(VerifyError {
                        workload: self.name().into(),
                        detail: format!(
                            "C[{r}][{cc}] = {}, expected {acc}",
                            got[r * n + cc]
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// `out[x][y] = in[y][x]` — naive transpose: coalesced reads, 32-way
/// strided writes. Bandwidth-bound with poor store locality.
#[derive(Debug)]
pub struct Transpose {
    n: u32,
    bufs: Option<(u64, u64)>,
}

impl Transpose {
    /// A transpose of an `n`×`n` `u32` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of 32.
    pub fn new(n: u32) -> Self {
        assert!(n >= 32 && n % 32 == 0, "n must be a multiple of 32");
        Transpose { n, bufs: None }
    }
}

impl Workload for Transpose {
    fn name(&self) -> &str {
        "transpose"
    }

    fn class(&self) -> WorkloadClass {
        WorkloadClass::Memory
    }

    fn prepare(&mut self, gmem: &mut GlobalMem) -> KernelDescriptor {
        let n = self.n;
        let bytes = u64::from(n) * u64::from(n) * 4;
        let src = gmem.alloc(bytes);
        let dst = gmem.alloc(bytes);
        let sv: Vec<u32> = (0..n * n).collect();
        gmem.write_u32_slice(src, &sv);
        self.bufs = Some((src, dst));

        let mut k = KernelBuilder::new("transpose", Dim2::new(32, 8));
        let psrc = k.param(0);
        let pdst = k.param(1);
        let pn = k.param(2);
        let tx = k.special(SpecialReg::TidX);
        let ty = k.special(SpecialReg::TidY);
        let bx = k.special(SpecialReg::CtaIdX);
        let by = k.special(SpecialReg::CtaIdY);
        let x = k.imad(bx, 32u64, tx);
        let y = k.imad(by, 8u64, ty);
        // v = in[y][x] (coalesced)
        let in_idx = k.imad(y, pn, x);
        let in_off = k.shl(in_idx, 2u64);
        let esrc = k.iadd(psrc, in_off);
        let v = k.ld_global_u32(esrc, 0);
        // out[x][y] = v (strided)
        let out_idx = k.imad(x, pn, y);
        let out_off = k.shl(out_idx, 2u64);
        let edst = k.iadd(pdst, out_off);
        k.st_global_u32(v, edst, 0);
        let prog = Arc::new(k.build().expect("transpose is well-formed"));
        KernelDescriptor::builder(prog, Dim2::new(n / 32, n / 8), Dim2::new(32, 8))
            .regs_per_thread(16)
            .params([src, dst, u64::from(n)])
            .build()
            .expect("valid launch")
    }

    fn verify(&self, gmem: &GlobalMem) -> Result<(), VerifyError> {
        let (src, dst) = self.bufs.expect("prepare() ran");
        let n = self.n as usize;
        let sv = gmem.read_u32_vec(src, n * n);
        let dv = gmem.read_u32_vec(dst, n * n);
        for y in 0..n {
            for x in 0..n {
                if dv[x * n + y] != sv[y * n + x] {
                    return Err(VerifyError {
                        workload: self.name().into(),
                        detail: format!(
                            "out[{x}][{y}] = {}, expected {}",
                            dv[x * n + y],
                            sv[y * n + x]
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(MatMulTiled::new(64).class(), WorkloadClass::Compute);
        assert_eq!(MatMulNaive::new(64).class(), WorkloadClass::Compute);
        assert_eq!(Transpose::new(64).class(), WorkloadClass::Memory);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn tiled_requires_multiple_of_tile() {
        let _ = MatMulTiled::new(40);
    }

    #[test]
    fn tiled_descriptor_geometry() {
        let mut g = GlobalMem::new();
        let mut w = MatMulTiled::new(64);
        let d = w.prepare(&mut g);
        assert_eq!(d.grid(), Dim2::new(4, 4));
        assert_eq!(d.threads_per_cta(), 256);
        assert_eq!(d.smem_per_cta(), 2048);
    }
}
