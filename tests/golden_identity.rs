//! Golden bit-identity suite for the simulator fast path.
//!
//! The event-gated dispatch, idle fast-forward, and parallel core
//! stepping in `gpgpu-sim` are pure wall-clock optimizations: every
//! statistic, per-kernel result, memory byte, and telemetry byte must
//! match the reference cycle-by-cycle loop
//! (`GpuDevice::set_fast_forward(false)`, `--sim-threads 1`). These tests
//! run a matrix of workloads against every named warp and CTA policy —
//! fast path and thread counts {1, 2, 4} vs reference — and compare
//! `SimStats`, the memory content hash, the serialized event trace, and
//! the serialized interval series for exact equality.

use gpgpu_repro::sim::{GpuConfig, GpuDevice, MemorySink, SimStats, TelemetryConfig};
use gpgpu_repro::tbs::{CtaPolicy, WarpPolicy};
use gpgpu_repro::workloads::compute::FmaHeavy;
use gpgpu_repro::workloads::irregular::RandomGather;
use gpgpu_repro::workloads::streaming::VecAdd;
use gpgpu_repro::workloads::Workload;

const MAX_CYCLES: u64 = 50_000_000;
const SAMPLE_EVERY: u64 = 500;

/// One complete traced run; `fast` selects the optimized or the reference
/// loop, `sim_threads` the core-stepping thread count. Returns the stats,
/// the byte-serialized telemetry streams, and the memory content hash.
fn run_once(
    workloads: &[&dyn Fn() -> Box<dyn Workload>],
    serial: bool,
    warp: WarpPolicy,
    cta: CtaPolicy,
    fast: bool,
    sim_threads: usize,
) -> (SimStats, String, String, u64) {
    let factory = warp.factory();
    let mut gpu = GpuDevice::new(GpuConfig::fermi(), factory.as_ref(), cta.scheduler());
    gpu.set_fast_forward(fast);
    gpu.set_sim_threads(sim_threads);
    gpu.enable_telemetry(TelemetryConfig::new(SAMPLE_EVERY), Box::new(MemorySink::new()));
    let mut instances: Vec<Box<dyn Workload>> = workloads.iter().map(|make| make()).collect();
    let mut prev = None;
    for w in &mut instances {
        let desc = w.prepare(gpu.mem());
        prev = Some(match (serial, prev) {
            (true, Some(dep)) => gpu.launch_after(desc, dep),
            _ => gpu.launch(desc),
        });
    }
    gpu.run(MAX_CYCLES).expect("run completes");
    for w in &instances {
        w.verify(gpu.mem_ref()).expect("output verifies");
    }
    let stats = gpu.stats();
    let mem_hash = gpu.mem_ref().content_hash();
    let data = gpu.take_telemetry_data().expect("telemetry attached");
    let mut events = Vec::new();
    data.write_events_jsonl(&mut events).expect("serialize events");
    let mut samples = Vec::new();
    data.write_samples_csv(&mut samples).expect("serialize samples");
    (
        stats,
        String::from_utf8(events).expect("jsonl is utf-8"),
        String::from_utf8(samples).expect("csv is utf-8"),
        mem_hash,
    )
}

fn assert_identical(
    label: &str,
    workloads: &[&dyn Fn() -> Box<dyn Workload>],
    serial: bool,
    warp: WarpPolicy,
    cta: CtaPolicy,
) {
    let fast = run_once(workloads, serial, warp, cta, true, 1);
    let reference = run_once(workloads, serial, warp, cta, false, 1);
    assert_eq!(fast.0, reference.0, "{label}: SimStats diverge");
    assert_eq!(fast.1, reference.1, "{label}: event traces diverge");
    assert_eq!(fast.2, reference.2, "{label}: interval series diverge");
    assert_eq!(fast.3, reference.3, "{label}: memory contents diverge");
    assert!(fast.0.instructions > 0, "{label}: trivial run proves nothing");
    assert_eq!(fast.0.malformed_dispatches, 0, "{label}: policy misbehaved");
}

/// Parallel stepping vs the sequential reference: `--sim-threads` must be
/// invisible in every output, with and without the idle fast-forward.
fn assert_thread_identical(
    label: &str,
    workloads: &[&dyn Fn() -> Box<dyn Workload>],
    serial: bool,
    warp: WarpPolicy,
    cta: CtaPolicy,
) {
    let reference = run_once(workloads, serial, warp, cta, false, 1);
    assert!(
        reference.0.instructions > 0,
        "{label}: trivial run proves nothing"
    );
    for threads in [1, 2, 4] {
        for fast in [false, true] {
            let par = run_once(workloads, serial, warp, cta, fast, threads);
            let tag = format!("{label} @ threads={threads} fast={fast}");
            assert_eq!(par.0, reference.0, "{tag}: SimStats diverge");
            assert_eq!(par.1, reference.1, "{tag}: event traces diverge");
            assert_eq!(par.2, reference.2, "{tag}: interval series diverge");
            assert_eq!(par.3, reference.3, "{tag}: memory contents diverge");
        }
    }
}

fn vecadd() -> Box<dyn Workload> {
    Box::new(VecAdd::new(8 * 1024))
}

fn fmaheavy() -> Box<dyn Workload> {
    Box::new(FmaHeavy::new(4 * 1024, 32))
}

fn gather() -> Box<dyn Workload> {
    Box::new(RandomGather::new(2 * 1024, 8))
}

#[test]
fn cta_policy_matrix_is_bit_identical() {
    let workloads: [(&str, &dyn Fn() -> Box<dyn Workload>); 3] =
        [("vecadd", &vecadd), ("fmaheavy", &fmaheavy), ("gather", &gather)];
    for (wname, make) in workloads {
        for (cname, cta) in CtaPolicy::all_named() {
            assert_identical(
                &format!("{wname} x gto x {cname}"),
                &[make],
                false,
                WarpPolicy::Gto,
                cta,
            );
        }
    }
}

#[test]
fn warp_policy_matrix_is_bit_identical() {
    for (wname, warp) in WarpPolicy::all_named() {
        assert_identical(
            &format!("vecadd x {wname} x baseline"),
            &[&vecadd],
            false,
            warp,
            CtaPolicy::Baseline(None),
        );
    }
}

#[test]
fn concurrent_pair_is_bit_identical() {
    // Two kernels live at once: exercises CKE admission, multi-kernel
    // dispatch gating, and fast-forward with heterogeneous occupancy.
    for (cname, cta) in [
        ("leftover-cke", CtaPolicy::LeftoverCke),
        ("mixed-cke:0.7", CtaPolicy::MixedCke(0.7)),
        ("baseline", CtaPolicy::Baseline(None)),
    ] {
        assert_identical(
            &format!("vecadd+fmaheavy x gto x {cname}"),
            &[&vecadd, &fmaheavy],
            false,
            WarpPolicy::Gto,
            cta,
        );
    }
}

#[test]
fn sim_threads_matrix_is_bit_identical() {
    // The E2/E5/E8 trace-point shapes from the experiment grid, swept
    // across `--sim-threads` {1, 2, 4}: the characterization baseline
    // (E2), the LCS throttle (E5), and a concurrent pair under mixed CKE
    // (E8, which exercises co-scheduled dispatch and multi-kernel merge
    // ordering).
    assert_thread_identical(
        "e2: vecadd x gto x baseline",
        &[&vecadd],
        false,
        WarpPolicy::Gto,
        CtaPolicy::Baseline(None),
    );
    assert_thread_identical(
        "e5: vecadd x gto x lcs:0.7",
        &[&vecadd],
        false,
        WarpPolicy::Gto,
        CtaPolicy::Lcs(0.7),
    );
    assert_thread_identical(
        "e8: vecadd+fmaheavy x gto x mixed-cke:0.7",
        &[&vecadd, &fmaheavy],
        false,
        WarpPolicy::Gto,
        CtaPolicy::MixedCke(0.7),
    );
}

#[test]
fn sim_threads_exceeding_cores_is_bit_identical() {
    // More threads than cores (fermi has 15) clamps rather than breaking.
    let reference = run_once(
        &[&gather],
        false,
        WarpPolicy::Gto,
        CtaPolicy::Baseline(None),
        false,
        1,
    );
    let par = run_once(
        &[&gather],
        false,
        WarpPolicy::Gto,
        CtaPolicy::Baseline(None),
        true,
        64,
    );
    assert_eq!(par.0, reference.0, "oversubscribed: SimStats diverge");
    assert_eq!(par.1, reference.1, "oversubscribed: event traces diverge");
    assert_eq!(par.2, reference.2, "oversubscribed: interval series diverge");
    assert_eq!(par.3, reference.3, "oversubscribed: memory contents diverge");
}

#[test]
fn stall_accounting_is_live_and_bit_identical() {
    // The stall taxonomy and occupancy integrals are observation-only:
    // every counter must be bit-identical across `--sim-threads` {1, 2, 4}
    // × fast-forward on/off, must actually fire (a taxonomy that never
    // attributes anything proves nothing), and must obey the conservation
    // identity `Σ stall_* == idle_slots + stalled_slots` per core. The
    // gather workload keeps loads in flight (MemPending) while the
    // fmaheavy pairing exercises scoreboard pressure.
    let reference = run_once(
        &[&vecadd, &gather],
        false,
        WarpPolicy::Gto,
        CtaPolicy::Baseline(None),
        false,
        1,
    );
    let bd = reference.0.stall_breakdown();
    assert!(bd.core_cycles > 0, "cycle integrals never advanced");
    assert_eq!(
        bd.core_cycles,
        reference.0.cycles * reference.0.cores.len() as u64,
        "every core must observe every device cycle"
    );
    assert!(bd.mem_pending > 0, "gather never waited on memory?");
    assert!(bd.scoreboard > 0, "no scoreboard stalls at all?");
    assert!(bd.ff_idle > 0, "no quiet cycles in a whole run?");
    assert!(bd.cta_resident_cycles > 0 && bd.warp_resident_cycles > 0);
    for (i, c) in reference.0.cores.iter().enumerate() {
        assert_eq!(
            c.stall_total(),
            c.idle_slots + c.stalled_slots,
            "core {i}: stall taxonomy does not balance the slot counters"
        );
    }
    gpgpu_repro::sim::assert_conservation(&reference.0);
    for threads in [1, 2, 4] {
        for fast in [false, true] {
            let par = run_once(
                &[&vecadd, &gather],
                false,
                WarpPolicy::Gto,
                CtaPolicy::Baseline(None),
                fast,
                threads,
            );
            assert_eq!(
                par.0.cores, reference.0.cores,
                "threads={threads} fast={fast}: stall/occupancy counters diverge"
            );
        }
    }
}

#[test]
fn serial_pair_is_bit_identical() {
    // launch_after: the second kernel activates on the first one's
    // completion cycle, which the fast-forward gating must not disturb.
    assert_identical(
        "vecadd->gather serial x gto x baseline",
        &[&vecadd, &gather],
        true,
        WarpPolicy::Gto,
        CtaPolicy::Baseline(None),
    );
}
