//! Warp schedulers: the baselines the paper compares against (LRR, GTO,
//! two-level) and the paper's block-aware warp scheduler (BAWS) used with
//! BCS.

use gpgpu_sim::{IssueView, KernelId, WarpMeta, WarpScheduler, WarpSchedulerFactory};
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// LRR — loose round robin.
// ---------------------------------------------------------------------

/// Loose round-robin: rotate through ready warps, starting after the last
/// warp that issued. Spreads issue slots evenly, which maximizes
/// memory-level parallelism but lets all warps reach their long-latency
/// loads at the same time.
#[derive(Debug)]
pub struct Lrr {
    last: Option<usize>,
}

impl Lrr {
    /// A fresh LRR scheduler.
    pub fn new() -> Self {
        Lrr { last: None }
    }
}

impl Default for Lrr {
    fn default() -> Self {
        Self::new()
    }
}

impl WarpScheduler for Lrr {
    fn name(&self) -> &str {
        "lrr"
    }

    fn pick(&mut self, _view: &IssueView<'_>, candidates: &[usize]) -> Option<usize> {
        let pick = match self.last {
            Some(last) => candidates
                .iter()
                .copied()
                .find(|&c| c > last)
                .or_else(|| candidates.first().copied()),
            None => candidates.first().copied(),
        };
        if let Some(p) = pick {
            self.last = Some(p);
        }
        pick
    }
}

/// Factory for [`Lrr`].
#[derive(Debug, Default)]
pub struct LrrFactory;

impl WarpSchedulerFactory for LrrFactory {
    fn name(&self) -> &str {
        "lrr"
    }
    fn create(&self, _core: usize, _slot: usize) -> Box<dyn WarpScheduler> {
        Box::new(Lrr::new())
    }
}

// ---------------------------------------------------------------------
// GTO — greedy-then-oldest.
// ---------------------------------------------------------------------

/// Greedy-then-oldest: keep issuing from the same warp until it stalls,
/// then fall back to the *oldest* ready warp (earliest dispatch stamp).
///
/// GTO is the paper's reference warp scheduler and — crucially — LCS's
/// sensor: because GTO concentrates issue slots on the oldest CTAs,
/// the per-CTA issue distribution measured during the monitoring period
/// reveals how many CTAs the core can usefully sustain.
#[derive(Debug)]
pub struct Gto {
    current: Option<usize>,
}

impl Gto {
    /// A fresh GTO scheduler.
    pub fn new() -> Self {
        Gto { current: None }
    }
}

impl Default for Gto {
    fn default() -> Self {
        Self::new()
    }
}

impl WarpScheduler for Gto {
    fn name(&self) -> &str {
        "gto"
    }

    fn pick(&mut self, view: &IssueView<'_>, candidates: &[usize]) -> Option<usize> {
        if let Some(cur) = self.current {
            if candidates.contains(&cur) {
                return Some(cur);
            }
        }
        let oldest = candidates
            .iter()
            .copied()
            .min_by_key(|&c| view.warp(c).map(|w| w.age).unwrap_or(u64::MAX));
        self.current = oldest;
        oldest
    }

    fn on_warp_finish(&mut self, slot: usize) {
        if self.current == Some(slot) {
            self.current = None;
        }
    }
}

/// Factory for [`Gto`].
#[derive(Debug, Default)]
pub struct GtoFactory;

impl WarpSchedulerFactory for GtoFactory {
    fn name(&self) -> &str {
        "gto"
    }
    fn create(&self, _core: usize, _slot: usize) -> Box<dyn WarpScheduler> {
        Box::new(Gto::new())
    }
}

// ---------------------------------------------------------------------
// Two-level scheduler.
// ---------------------------------------------------------------------

/// Two-level scheduling (Narasiman et al., MICRO'11): a small *active set*
/// issues round-robin; a warp that stalls rotates out to the pending pool
/// and the next pending warp rotates in. Keeps a few warps hitting their
/// loads at staggered times.
#[derive(Debug)]
pub struct TwoLevel {
    active: VecDeque<usize>,
    pending: VecDeque<usize>,
    active_size: usize,
}

impl TwoLevel {
    /// A two-level scheduler with the given active-set size.
    pub fn new(active_size: usize) -> Self {
        TwoLevel {
            active: VecDeque::new(),
            pending: VecDeque::new(),
            active_size: active_size.max(1),
        }
    }
}

impl WarpScheduler for TwoLevel {
    fn name(&self) -> &str {
        "two-level"
    }

    fn pick(&mut self, _view: &IssueView<'_>, candidates: &[usize]) -> Option<usize> {
        // Round-robin within the active set.
        for _ in 0..self.active.len() {
            let w = self.active.pop_front().expect("nonempty");
            self.active.push_back(w);
            if candidates.contains(&w) {
                return Some(w);
            }
        }
        // No active warp is ready: demote the head, promote a ready
        // pending warp.
        for _ in 0..self.pending.len() {
            let w = self.pending.pop_front().expect("nonempty");
            if candidates.contains(&w) {
                if self.active.len() >= self.active_size {
                    if let Some(demoted) = self.active.pop_front() {
                        self.pending.push_back(demoted);
                    }
                }
                self.active.push_back(w);
                return Some(w);
            }
            self.pending.push_back(w);
        }
        None
    }

    fn on_warp_start(&mut self, slot: usize, _meta: &WarpMeta) {
        if self.active.len() < self.active_size {
            self.active.push_back(slot);
        } else {
            self.pending.push_back(slot);
        }
    }

    fn on_warp_finish(&mut self, slot: usize) {
        self.active.retain(|&w| w != slot);
        self.pending.retain(|&w| w != slot);
        if let Some(p) = self.pending.pop_front() {
            if self.active.len() < self.active_size {
                self.active.push_back(p);
            } else {
                self.pending.push_front(p);
            }
        }
    }
}

/// Factory for [`TwoLevel`].
#[derive(Debug)]
pub struct TwoLevelFactory {
    /// Active-set size per scheduler instance.
    pub active_size: usize,
}

impl Default for TwoLevelFactory {
    fn default() -> Self {
        TwoLevelFactory { active_size: 8 }
    }
}

impl WarpSchedulerFactory for TwoLevelFactory {
    fn name(&self) -> &str {
        "two-level"
    }
    fn create(&self, _core: usize, _slot: usize) -> Box<dyn WarpScheduler> {
        Box::new(TwoLevel::new(self.active_size))
    }
}

// ---------------------------------------------------------------------
// BAWS — the paper's block-aware warp scheduler.
// ---------------------------------------------------------------------

/// Block-aware warp scheduling, the warp-scheduler half of BCS.
///
/// BCS places blocks of `block_size` consecutive CTAs on the same core to
/// expose inter-CTA locality; a greedy scheduler would then let one CTA of
/// the block race ahead, pulling the siblings' shared lines through the
/// cache at different times. BAWS instead:
///
/// 1. prioritizes the *oldest block* of CTAs (greedy at block
///    granularity), and
/// 2. round-robins among the warps *within* that block, so sibling CTAs
///    advance together and touch their shared lines close in time.
#[derive(Debug)]
pub struct Baws {
    block_size: u64,
    /// Last-issue stamps for intra-block fairness.
    last_issue: Vec<u64>,
    stamp: u64,
}

impl Baws {
    /// A BAWS instance for blocks of `block_size` consecutive CTAs.
    pub fn new(block_size: u32) -> Self {
        Baws {
            block_size: u64::from(block_size.max(1)),
            last_issue: Vec::new(),
            stamp: 0,
        }
    }

    fn block_of(&self, meta: &WarpMeta) -> (KernelId, u64) {
        (meta.kernel, meta.cta_id / self.block_size)
    }
}

impl WarpScheduler for Baws {
    fn name(&self) -> &str {
        "baws"
    }

    fn pick(&mut self, view: &IssueView<'_>, candidates: &[usize]) -> Option<usize> {
        // Oldest block among the candidates (by the youngest age inside
        // the block, i.e. block dispatch time).
        let mut best_block: Option<((KernelId, u64), u64)> = None;
        for &c in candidates {
            let Some(meta) = view.warp(c) else { continue };
            let block = self.block_of(meta);
            let entry = best_block.get_or_insert((block, meta.age));
            if meta.age < entry.1 {
                *entry = (block, meta.age);
            }
        }
        let (block, _) = best_block?;
        // Round-robin within the block: least-recently issued warp.
        let pick = candidates
            .iter()
            .copied()
            .filter(|&c| view.warp(c).map(|m| self.block_of(m) == block).unwrap_or(false))
            .min_by_key(|&c| self.last_issue.get(c).copied().unwrap_or(0))?;
        self.stamp += 1;
        if self.last_issue.len() <= pick {
            self.last_issue.resize(pick + 1, 0);
        }
        self.last_issue[pick] = self.stamp;
        Some(pick)
    }
}

/// Factory for [`Baws`].
#[derive(Debug)]
pub struct BawsFactory {
    /// CTA-block size (must match the BCS dispatch block size).
    pub block_size: u32,
}

impl Default for BawsFactory {
    fn default() -> Self {
        BawsFactory { block_size: 2 }
    }
}

impl WarpSchedulerFactory for BawsFactory {
    fn name(&self) -> &str {
        "baws"
    }
    fn create(&self, _core: usize, _slot: usize) -> Box<dyn WarpScheduler> {
        Box::new(Baws::new(self.block_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(kernel: usize, cta: u64, age: u64) -> WarpMeta {
        WarpMeta {
            kernel: KernelId(kernel),
            cta_id: cta,
            cta_slot: 0,
            warp_in_cta: 0,
            age,
            issued: 0,
        }
    }

    fn view_of(warps: &[Option<WarpMeta>]) -> IssueView<'_> {
        IssueView::new(0, 0, warps)
    }

    #[test]
    fn lrr_rotates() {
        let warps = vec![Some(meta(0, 0, 1)), Some(meta(0, 0, 2)), Some(meta(0, 1, 3))];
        let v = view_of(&warps);
        let mut s = Lrr::new();
        assert_eq!(s.pick(&v, &[0, 1, 2]), Some(0));
        assert_eq!(s.pick(&v, &[0, 1, 2]), Some(1));
        assert_eq!(s.pick(&v, &[0, 1, 2]), Some(2));
        assert_eq!(s.pick(&v, &[0, 1, 2]), Some(0), "wraps around");
        // Skips non-candidates.
        assert_eq!(s.pick(&v, &[2]), Some(2));
        assert_eq!(s.pick(&v, &[]), None);
    }

    #[test]
    fn gto_sticks_with_current_until_it_stalls() {
        let warps = vec![
            Some(meta(0, 0, 10)),
            Some(meta(0, 0, 5)), // oldest
            Some(meta(0, 1, 20)),
        ];
        let v = view_of(&warps);
        let mut s = Gto::new();
        // First pick: the oldest (slot 1).
        assert_eq!(s.pick(&v, &[0, 1, 2]), Some(1));
        // Greedy: stays on 1 while it remains ready.
        assert_eq!(s.pick(&v, &[0, 1, 2]), Some(1));
        // 1 stalls: falls to the oldest ready (slot 0, age 10 < 20).
        assert_eq!(s.pick(&v, &[0, 2]), Some(0));
        // 1 becomes ready again, but greedy now follows 0.
        assert_eq!(s.pick(&v, &[0, 1, 2]), Some(0));
        s.on_warp_finish(0);
        assert_eq!(s.pick(&v, &[1, 2]), Some(1));
    }

    #[test]
    fn two_level_restricts_to_active_set() {
        let warps: Vec<Option<WarpMeta>> =
            (0..6).map(|i| Some(meta(0, 0, i as u64))).collect();
        let v = view_of(&warps);
        let mut s = TwoLevel::new(2);
        for i in 0..6 {
            s.on_warp_start(i, &meta(0, 0, i as u64));
        }
        let all: Vec<usize> = (0..6).collect();
        // Only warps 0 and 1 (the active set) issue while both are ready.
        let mut picks = std::collections::BTreeSet::new();
        for _ in 0..10 {
            picks.insert(s.pick(&v, &all).unwrap());
        }
        assert_eq!(picks.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        // When the active set stalls, a pending warp is promoted.
        let got = s.pick(&v, &[3, 4]).unwrap();
        assert!(got == 3 || got == 4);
    }

    #[test]
    fn baws_prefers_oldest_block_and_round_robins_within() {
        // Block size 2: CTAs 0,1 form block 0; CTAs 2,3 form block 1.
        let warps = vec![
            Some(meta(0, 0, 1)), // block 0
            Some(meta(0, 1, 2)), // block 0
            Some(meta(0, 2, 3)), // block 1
            Some(meta(0, 3, 4)), // block 1
        ];
        let v = view_of(&warps);
        let mut s = Baws::new(2);
        // All ready: block 0 wins; round-robin alternates its two warps.
        let a = s.pick(&v, &[0, 1, 2, 3]).unwrap();
        let b = s.pick(&v, &[0, 1, 2, 3]).unwrap();
        assert_eq!(
            {
                let mut ab = [a, b];
                ab.sort_unstable();
                ab
            },
            [0, 1],
            "block 0's warps must alternate"
        );
        // Block 0 fully stalled: block 1 proceeds.
        let c = s.pick(&v, &[2, 3]).unwrap();
        assert!(c == 2 || c == 3);
    }

    #[test]
    fn baws_blocks_respect_kernel_boundaries() {
        // Same block index, different kernels: must not be merged.
        let warps = vec![
            Some(meta(0, 0, 5)),
            Some(meta(1, 0, 1)), // older, different kernel
        ];
        let v = view_of(&warps);
        let mut s = Baws::new(2);
        // Oldest block is kernel 1's.
        assert_eq!(s.pick(&v, &[0, 1]), Some(1));
    }

    #[test]
    fn factories_create_named_schedulers() {
        assert_eq!(LrrFactory.create(0, 0).name(), "lrr");
        assert_eq!(GtoFactory.create(0, 1).name(), "gto");
        assert_eq!(TwoLevelFactory::default().create(0, 0).name(), "two-level");
        assert_eq!(BawsFactory::default().create(0, 0).name(), "baws");
    }
}
