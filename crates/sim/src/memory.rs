//! Functional (value-carrying) memory.
//!
//! The simulator is *timing-first, functional-now*: instructions are
//! evaluated at issue time against this memory so programs compute real
//! results (verifiable by tests), while the timing of each access is
//! modeled separately by the cache hierarchy and DRAM.

use gpgpu_isa::{AccessWidth, WARP_SIZE};
use std::collections::HashMap;

const PAGE_BYTES: usize = 4096;
const PAGE_SHIFT: u32 = 12;
/// Pages below this index live in a dense, directly indexed table (256 MiB
/// of address space; the table itself is at most 512 KiB of pointers).
/// Pages above it — only reachable through stray computed addresses — fall
/// back to a hash map.
const DENSE_PAGES: usize = 1 << 16;

/// Sparse, byte-addressable functional global memory with a bump
/// allocator. Unallocated bytes read as zero.
///
/// Functional accesses run on the issue-stage hot path (every load
/// evaluates per lane), so the common case must be cheap: pages in the
/// bump-allocated range are found by direct index, and aligned word
/// accesses touch their page exactly once.
#[derive(Debug, Default)]
pub struct GlobalMem {
    /// Directly indexed page table for the bump-allocated range.
    dense: Vec<Option<Box<[u8; PAGE_BYTES]>>>,
    /// Overflow for out-of-range computed addresses (rare).
    sparse: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
    /// Materialized page count (dense + sparse).
    resident: usize,
    next_alloc: u64,
}

impl GlobalMem {
    /// An empty memory whose allocator starts at a non-zero base (so that
    /// address 0 stays unused, catching uninitialized pointers).
    pub fn new() -> Self {
        GlobalMem {
            dense: Vec::new(),
            sparse: HashMap::new(),
            resident: 0,
            next_alloc: 0x1_0000,
        }
    }

    /// Reserves `bytes` of address space (256-byte aligned) and returns its
    /// base address. Purely an address-space operation; pages materialize
    /// on first write.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next_alloc;
        self.next_alloc = (self.next_alloc + bytes + 255) & !255;
        base
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_BYTES]> {
        let idx = addr >> PAGE_SHIFT;
        if (idx as usize) < DENSE_PAGES {
            self.dense.get(idx as usize)?.as_deref()
        } else {
            self.sparse.get(&idx).map(|b| &**b)
        }
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_BYTES] {
        let idx = addr >> PAGE_SHIFT;
        if (idx as usize) < DENSE_PAGES {
            let i = idx as usize;
            if i >= self.dense.len() {
                self.dense.resize_with(i + 1, || None);
            }
            self.dense[i].get_or_insert_with(|| {
                self.resident += 1;
                Box::new([0u8; PAGE_BYTES])
            })
        } else {
            self.sparse.entry(idx).or_insert_with(|| {
                self.resident += 1;
                Box::new([0u8; PAGE_BYTES])
            })
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr)
            .map(|p| p[(addr as usize) & (PAGE_BYTES - 1)])
            .unwrap_or(0)
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        self.page_mut(addr)[off] = v;
    }

    /// Reads a little-endian `u32` (may straddle pages).
    pub fn read_u32(&self, addr: u64) -> u32 {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off <= PAGE_BYTES - 4 {
            match self.page(addr) {
                Some(p) => u32::from_le_bytes(p[off..off + 4].try_into().expect("4 bytes")),
                None => 0,
            }
        } else {
            let mut b = [0u8; 4];
            for (i, byte) in b.iter_mut().enumerate() {
                *byte = self.read_u8(addr + i as u64);
            }
            u32::from_le_bytes(b)
        }
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off <= PAGE_BYTES - 4 {
            self.page_mut(addr)[off..off + 4].copy_from_slice(&v.to_le_bytes());
        } else {
            for (i, byte) in v.to_le_bytes().iter().enumerate() {
                self.write_u8(addr + i as u64, *byte);
            }
        }
    }

    /// Reads a little-endian `u64` (may straddle pages).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off <= PAGE_BYTES - 8 {
            match self.page(addr) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes")),
                None => 0,
            }
        } else {
            let mut b = [0u8; 8];
            for (i, byte) in b.iter_mut().enumerate() {
                *byte = self.read_u8(addr + i as u64);
            }
            u64::from_le_bytes(b)
        }
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off <= PAGE_BYTES - 8 {
            self.page_mut(addr)[off..off + 8].copy_from_slice(&v.to_le_bytes());
        } else {
            for (i, byte) in v.to_le_bytes().iter().enumerate() {
                self.write_u8(addr + i as u64, *byte);
            }
        }
    }

    /// Reads an `f32` (bit pattern of the `u32` at `addr`).
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Writes a slice of `u32`s starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *v);
        }
    }

    /// Reads `n` `u32`s starting at `addr`.
    pub fn read_u32_vec(&self, addr: u64, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u64)).collect()
    }

    /// Writes a slice of `f32`s starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, *v);
        }
    }

    /// Reads `n` `f32`s starting at `addr`.
    pub fn read_f32_vec(&self, addr: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u64)).collect()
    }

    /// Number of 4 KiB pages materialized so far.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// A deterministic digest of memory *content*: FNV-1a over every
    /// non-zero materialized page, visited in ascending page order
    /// regardless of whether the page lives in the dense table or the
    /// sparse overflow. All-zero pages are skipped, so the hash depends
    /// only on observable values (unallocated bytes read as zero), not on
    /// which pages happen to have been materialized. Two memories with the
    /// same readable contents therefore hash identically — the snapshot
    /// primitive behind `simcheck`'s cross-policy functional oracle.
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        fn mix_page(mut h: u64, idx: u64, page: &[u8; PAGE_BYTES]) -> u64 {
            if page.iter().all(|&b| b == 0) {
                return h;
            }
            for b in idx.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
            for &b in page.iter() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
            h
        }
        let mut h = FNV_OFFSET;
        for (i, page) in self.dense.iter().enumerate() {
            if let Some(p) = page {
                h = mix_page(h, i as u64, p);
            }
        }
        let mut overflow: Vec<u64> = self.sparse.keys().copied().collect();
        overflow.sort_unstable();
        for idx in overflow {
            h = mix_page(h, idx, &self.sparse[&idx]);
        }
        h
    }

    /// Reads one lane value of the given access width.
    pub(crate) fn read_width(&self, addr: u64, width: AccessWidth) -> u64 {
        match width {
            AccessWidth::W4 => u64::from(self.read_u32(addr)),
            AccessWidth::W8 => self.read_u64(addr),
        }
    }

    /// Writes one lane value of the given access width.
    pub(crate) fn write_width(&mut self, addr: u64, v: u64, width: AccessWidth) {
        match width {
            AccessWidth::W4 => self.write_u32(addr, v as u32),
            AccessWidth::W8 => self.write_u64(addr, v),
        }
    }

    /// Applies one staged store in lane order (see [`GmemOp`]).
    pub(crate) fn apply_store(&mut self, op: &GmemOp) {
        for lane in 0..WARP_SIZE {
            if op.mask & (1 << lane) != 0 {
                self.write_width(op.addrs[lane], op.values[lane], op.width);
            }
        }
    }

    /// Materializes (without modifying) every page the store would write:
    /// replay's stand-in for [`GlobalMem::apply_store`], keeping
    /// `resident_pages` — a telemetry observable — on the same trajectory
    /// as direct execution while leaving contents untouched (pages start
    /// zeroed, and [`GlobalMem::content_hash`] skips all-zero pages).
    pub(crate) fn touch_store(&mut self, op: &GmemOp) {
        let bytes = match op.width {
            AccessWidth::W4 => 4,
            AccessWidth::W8 => 8,
        };
        for lane in 0..WARP_SIZE {
            if op.mask & (1 << lane) != 0 {
                // A lane write can straddle a page boundary; touch each
                // byte's page the way the per-byte writes would.
                for b in 0..bytes {
                    let _ = self.page_mut(op.addrs[lane] + b);
                }
            }
        }
    }
}

/// One functional global-memory operation, staged by a core's issue stage
/// and replayed against [`GlobalMem`] during the merge phase of the cycle.
///
/// Staging exists so that the parallel core loop never touches the shared
/// functional memory from a worker thread: every cycle, each core appends
/// the global loads/stores it issued (in issue order) to its private
/// staging buffer, and the device replays all buffers *in fixed core
/// order* — reproducing exactly the interleaving the sequential loop
/// produces, byte for byte, at any thread count. Deferring a load's
/// functional read from issue to merge is safe because its destination
/// register stays scoreboard-pending for at least the L1 hit latency, so
/// no instruction can observe the value before the merge lands it.
///
/// For loads, `values` carries nothing on input; for stores it carries the
/// lane values captured at issue time (register reads are warp-private and
/// cannot change between issue and merge within a cycle).
#[derive(Debug, Clone)]
pub(crate) struct GmemOp {
    /// `true` for a store (apply `values`), `false` for a load (fill the
    /// warp's destination register from memory).
    pub is_store: bool,
    /// Replay stores only: materialize the written pages but leave their
    /// contents alone (replay never touches memory data).
    pub touch_only: bool,
    /// Destination warp slot (loads only).
    pub warp: usize,
    /// Destination register index (loads only).
    pub reg: u8,
    /// Access width of every lane.
    pub width: AccessWidth,
    /// Per-lane byte addresses.
    pub addrs: [u64; WARP_SIZE],
    /// Per-lane store values (stores only).
    pub values: [u64; WARP_SIZE],
    /// Active lanes.
    pub mask: u32,
}

/// A CTA's functional shared-memory scratchpad (byte-addressable,
/// CTA-local addresses starting at 0). Out-of-range accesses read zero and
/// drop writes, mirroring how a timing-only model must stay robust to
/// workload bugs.
#[derive(Debug)]
pub struct SharedMem {
    bytes: Vec<u8>,
}

impl SharedMem {
    /// A zeroed scratchpad of `size` bytes.
    pub fn new(size: u32) -> Self {
        SharedMem {
            bytes: vec![0; size as usize],
        }
    }

    /// Capacity in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Reads a `u32`; out-of-range reads return 0.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let a = addr as usize;
        if a + 4 <= self.bytes.len() {
            u32::from_le_bytes(self.bytes[a..a + 4].try_into().expect("4 bytes"))
        } else {
            0
        }
    }

    /// Writes a `u32`; out-of-range writes are dropped.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        let a = addr as usize;
        if a + 4 <= self.bytes.len() {
            self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Reads a `u64`; out-of-range reads return 0.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let a = addr as usize;
        if a + 8 <= self.bytes.len() {
            u64::from_le_bytes(self.bytes[a..a + 8].try_into().expect("8 bytes"))
        } else {
            0
        }
    }

    /// Writes a `u64`; out-of-range writes are dropped.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        let a = addr as usize;
        if a + 8 <= self.bytes.len() {
            self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let m = GlobalMem::new();
        assert_eq!(m.read_u32(0x5000), 0);
        assert_eq!(m.read_u64(u64::MAX - 16), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = GlobalMem::new();
        m.write_u32(0x1000, 0xdead_beef);
        assert_eq!(m.read_u32(0x1000), 0xdead_beef);
        m.write_u64(0x2000, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x2000), 0x0123_4567_89ab_cdef);
        m.write_f32(0x3000, -2.5);
        assert_eq!(m.read_f32(0x3000), -2.5);
    }

    #[test]
    fn page_straddling_access() {
        let mut m = GlobalMem::new();
        let addr = 4096 - 2; // straddles the first page boundary
        m.write_u32(addr, 0x11223344);
        assert_eq!(m.read_u32(addr), 0x11223344);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn slices_round_trip() {
        let mut m = GlobalMem::new();
        let data: Vec<u32> = (0..100).collect();
        m.write_u32_slice(0x4000, &data);
        assert_eq!(m.read_u32_vec(0x4000, 100), data);
        let f: Vec<f32> = (0..8).map(|i| i as f32 * 0.5).collect();
        m.write_f32_slice(0x8000, &f);
        assert_eq!(m.read_f32_vec(0x8000, 8), f);
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMem::new();
        let a = m.alloc(100);
        let b = m.alloc(1);
        let c = m.alloc(4096);
        assert_eq!(a % 256, 0);
        assert_eq!(b % 256, 0);
        assert!(b >= a + 100);
        assert!(c >= b + 1);
        assert_ne!(a, 0, "allocations avoid the null page");
    }

    #[test]
    fn content_hash_tracks_values_not_materialization() {
        let mut a = GlobalMem::new();
        let mut b = GlobalMem::new();
        assert_eq!(a.content_hash(), b.content_hash(), "empty memories agree");

        // Materializing a page with zeroes must not change the hash: the
        // readable contents are unchanged.
        a.write_u32(0x4000, 0);
        assert_eq!(a.content_hash(), b.content_hash());

        a.write_u32(0x4000, 7);
        let h1 = a.content_hash();
        assert_ne!(h1, b.content_hash(), "a write is visible");
        b.write_u32(0x4000, 7);
        assert_eq!(h1, b.content_hash(), "same contents, same hash");

        // Same value at a different address hashes differently.
        let mut c = GlobalMem::new();
        c.write_u32(0x8000, 7);
        assert_ne!(c.content_hash(), h1);

        // A sparse-overflow page (beyond the dense range) participates.
        let far = (super::DENSE_PAGES as u64 + 5) << 12;
        a.write_u32(far, 9);
        b.write_u32(far, 9);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), h1);
    }

    #[test]
    fn shared_mem_bounds() {
        let mut s = SharedMem::new(64);
        s.write_u32(0, 5);
        s.write_u32(60, 7);
        s.write_u32(62, 9); // straddles the end: dropped
        assert_eq!(s.read_u32(0), 5);
        assert_eq!(s.read_u32(60), 7);
        assert_eq!(s.read_u32(62), 0);
        assert_eq!(s.read_u32(1 << 40), 0);
        s.write_u64(0, u64::MAX);
        assert_eq!(s.read_u64(0), u64::MAX);
        assert_eq!(s.size(), 64);
    }
}
