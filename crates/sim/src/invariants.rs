//! Reusable conservation invariants over [`SimStats`].
//!
//! These are counters that must balance at quiesce no matter which
//! scheduling policies ran; a violation means the simulator lost or
//! double-counted work — exactly the kind of bug that silently skews every
//! experiment downstream. Promoted out of `tests/conservation.rs` so the
//! `simcheck` fuzzer (and any future harness) can apply the same checks to
//! generated scenarios instead of re-stating them inline.

use crate::stats::SimStats;

/// Every conservation violation in `stats`, as human-readable findings.
///
/// Empty means the run balances. The checks assume the device has
/// quiesced (i.e. `run` returned `Ok`); a mid-run snapshot legitimately
/// has loads in flight and unfinished kernels, and is only held to the
/// subset of checks that are monotone (attribution sums, bounds).
pub fn conservation_violations(stats: &SimStats) -> Vec<String> {
    let all_done = stats.kernels.iter().all(|k| k.done);
    let mut v = Vec::new();

    // Memory-request conservation: every load that entered the fabric came
    // back out; the memory system holds no requests at quiesce.
    if all_done && stats.fabric.loads_in != stats.fabric.loads_out {
        v.push(format!(
            "loads in flight at quiesce: {} entered the fabric, {} returned",
            stats.fabric.loads_in, stats.fabric.loads_out
        ));
    }

    // Instruction attribution covers every issued instruction exactly once,
    // from both directions: per-kernel and per-core sums must each equal
    // the device total.
    let per_kernel: u64 = stats.kernels.iter().map(|k| k.instructions).sum();
    if per_kernel != stats.instructions {
        v.push(format!(
            "per-kernel instructions sum to {per_kernel}, device total is {}",
            stats.instructions
        ));
    }
    let per_core: u64 = stats.cores.iter().map(|c| c.issued).sum();
    if per_core != stats.instructions {
        v.push(format!(
            "per-core issued sums to {per_core}, device total is {}",
            stats.instructions
        ));
    }

    // Issue-slot accounting: each slot that issued executed exactly one
    // instruction, so the two counters must agree core by core.
    for (i, c) in stats.cores.iter().enumerate() {
        if c.issued != c.issued_slots {
            v.push(format!(
                "core {i}: issued {} instructions over {} issued slots",
                c.issued, c.issued_slots
            ));
        }
    }

    // Stall-attribution conservation: the taxonomy classifies every
    // non-issuing scheduler slot exactly once, so per core its six
    // counters must sum to the legacy idle + stalled total (fast-forwarded
    // spans included — they are booked as FastForwardedIdle on one side
    // and idle/stalled on the other).
    for (i, c) in stats.cores.iter().enumerate() {
        let attributed = c.stall_total();
        let lost = c.idle_slots + c.stalled_slots;
        if attributed != lost {
            v.push(format!(
                "core {i}: stall taxonomy attributes {attributed} slots, \
                 idle+stalled book {lost}"
            ));
        }
    }

    // Every core is stepped (or fast-forward-accounted) every device
    // cycle, so the observed cycle counts must agree across cores.
    for pair in stats.cores.windows(2) {
        if pair[0].core_cycles != pair[1].core_cycles {
            v.push(format!(
                "cores disagree on elapsed cycles: {} vs {}",
                pair[0].core_cycles, pair[1].core_cycles
            ));
            break;
        }
    }

    // CTA conservation: every CTA of every kernel retires on exactly one
    // core — equality at quiesce, never an excess mid-run.
    let cores_completed: u64 = stats.cores.iter().map(|c| c.ctas_completed).sum();
    let grid_ctas: u64 = stats.kernels.iter().map(|k| k.ctas).sum();
    if all_done {
        if cores_completed != grid_ctas {
            v.push(format!(
                "cores retired {cores_completed} CTAs, grids hold {grid_ctas}"
            ));
        }
    } else if cores_completed > grid_ctas {
        v.push(format!(
            "cores retired {cores_completed} CTAs, more than the {grid_ctas} ever launched"
        ));
    }

    // Per-kernel timeline sanity.
    for k in &stats.kernels {
        if k.done && !k.started {
            v.push(format!("kernel {} ({}) done but never started", k.id.0, k.name));
        }
        if k.done && k.end_cycle < k.start_cycle {
            v.push(format!(
                "kernel {} ({}) ends at cycle {} before starting at {}",
                k.id.0, k.name, k.end_cycle, k.start_cycle
            ));
        }
        if k.end_cycle > stats.cycles {
            v.push(format!(
                "kernel {} ({}) ends at cycle {}, past the device clock {}",
                k.id.0, k.name, k.end_cycle, stats.cycles
            ));
        }
    }

    // The device discards malformed CTA-scheduler decisions rather than
    // crashing; a well-behaved policy never produces one.
    if stats.malformed_dispatches != 0 {
        v.push(format!(
            "{} malformed CTA dispatches discarded",
            stats.malformed_dispatches
        ));
    }

    v
}

/// Panics with every violation if `stats` fails any conservation check.
///
/// # Panics
///
/// Panics when [`conservation_violations`] is non-empty; the message lists
/// each finding on its own line.
pub fn assert_conservation(stats: &SimStats) {
    let v = conservation_violations(stats);
    assert!(
        v.is_empty(),
        "conservation violations:\n  {}",
        v.join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_model::CoreStats;
    use crate::sched_api::KernelId;
    use crate::stats::KernelStats;

    fn balanced() -> SimStats {
        SimStats {
            cycles: 1000,
            instructions: 40,
            kernels: vec![KernelStats {
                id: KernelId(0),
                name: "k".into(),
                start_cycle: 10,
                end_cycle: 900,
                instructions: 40,
                ctas: 2,
                started: true,
                done: true,
            }],
            l1: Default::default(),
            fabric: Default::default(),
            cores: vec![
                CoreStats {
                    issued: 30,
                    issued_slots: 30,
                    ctas_completed: 1,
                    ..Default::default()
                },
                CoreStats {
                    issued: 10,
                    issued_slots: 10,
                    ctas_completed: 1,
                    ..Default::default()
                },
            ],
            malformed_dispatches: 0,
        }
    }

    #[test]
    fn balanced_stats_pass() {
        assert_conservation(&balanced());
    }

    #[test]
    fn each_imbalance_is_reported() {
        let mut s = balanced();
        s.fabric.loads_in = 5; // loads_out stays 0
        s.kernels[0].instructions = 39;
        s.cores[0].issued_slots = 29;
        s.cores[1].ctas_completed = 9;
        s.malformed_dispatches = 2;
        let v = conservation_violations(&s);
        assert!(v.iter().any(|m| m.contains("loads in flight")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("per-kernel")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("issued slots")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("retired")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("malformed")), "{v:?}");
    }

    #[test]
    fn in_flight_runs_skip_quiesce_only_checks() {
        let mut s = balanced();
        s.kernels[0].done = false;
        s.kernels[0].end_cycle = 0;
        s.fabric.loads_in = 5; // legitimately in flight
        s.cores[1].ctas_completed = 0; // CTA still running
        assert!(conservation_violations(&s).is_empty());
    }

    #[test]
    fn timeline_violations_detected() {
        let mut s = balanced();
        s.kernels[0].end_cycle = 5; // before start_cycle 10
        let v = conservation_violations(&s);
        assert!(v.iter().any(|m| m.contains("before starting")), "{v:?}");
    }

    #[test]
    fn stall_taxonomy_must_balance_slot_counters() {
        let mut s = balanced();
        // Attribute the lost slots fully: 6 stalled + 4 idle across the
        // taxonomy balances; then break it by one slot.
        s.cores[0].stalled_slots = 6;
        s.cores[0].idle_slots = 4;
        s.cores[0].stall_scoreboard = 3;
        s.cores[0].stall_mem_pending = 2;
        s.cores[0].stall_barrier = 1;
        s.cores[0].stall_no_resident = 1;
        s.cores[0].stall_ff_idle = 3;
        assert_conservation(&s);
        s.cores[0].stall_ff_idle = 2;
        let v = conservation_violations(&s);
        assert!(v.iter().any(|m| m.contains("stall taxonomy")), "{v:?}");
    }

    #[test]
    fn cores_must_agree_on_elapsed_cycles() {
        let mut s = balanced();
        s.cores[0].core_cycles = 1000;
        s.cores[1].core_cycles = 999;
        let v = conservation_violations(&s);
        assert!(
            v.iter().any(|m| m.contains("disagree on elapsed cycles")),
            "{v:?}"
        );
    }
}
