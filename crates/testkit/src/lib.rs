//! Dependency-free deterministic test support shared across the workspace.
//!
//! Every crate in this repository used to carry its own private copy of a
//! SplitMix64 `Gen` struct for seeded property tests; this crate is the
//! single home for that machinery. It has **no dependencies** (not even on
//! the other workspace crates), so any crate — including `gpgpu-isa` at the
//! bottom of the dependency graph — can dev-depend on it without cycles.
//!
//! Two types are exported:
//!
//! - [`SplitMix64`]: the raw PRNG. Its output stream is bit-stable across
//!   platforms and releases; seeded workload inputs (and therefore simulated
//!   cycle counts) must never change, so **do not alter the algorithm**.
//! - [`Gen`]: a property-test case generator layered on top, with an
//!   *unbiased* bounded-range draw and the convenience draws
//!   (`f32` special-value mix, probability knobs, vectors) that the old
//!   per-crate copies had grown independently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A tiny deterministic PRNG (SplitMix64).
///
/// Self-contained so nothing in the workspace needs an external RNG crate;
/// the stream is stable across platforms and releases, which keeps seeded
/// inputs — and therefore simulated cycle counts — reproducible.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next draw as `u32` (upper half of the 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A draw in `[lo, hi)`. Uses a simple modulo reduction — fine for
    /// workload-input generation, where a sub-ppm bias is irrelevant, and
    /// kept byte-for-byte stream-compatible with historical releases so
    /// seeded workload inputs do not change. New test code should prefer
    /// [`Gen::range`], which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }
}

/// Deterministic property-test case generator.
///
/// Wraps [`SplitMix64`] with the draws test suites actually use. Unlike the
/// raw PRNG (whose stream is frozen), `Gen`'s derived draws may evolve —
/// tests pin behaviour per seed, not across releases.
#[derive(Debug, Clone)]
pub struct Gen(SplitMix64);

impl Gen {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Gen(SplitMix64::new(seed))
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// The next draw as `u32` (upper half of the 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    /// An unbiased draw in `[lo, hi)` via Lemire's widening-multiply
    /// method with rejection (deterministic: the rejection loop consumes
    /// draws from the same stream).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        if span == 1 {
            return lo;
        }
        // Lemire 2019: multiply a 64-bit draw by the span; the high word is
        // the candidate, the low word decides rejection of the biased tail.
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = (self.next_u64() as u128) * (span as u128);
            if (m as u64) >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// A draw in `[0, n)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range(0, n as u64) as usize
    }

    /// One element of `items`, by unbiased index.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// `true` with probability `num/denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.range(0, denom) < num
    }

    /// An `f32` mixing ordinary values with the special cases property
    /// tests care about (zeroes, infinities, NaN, denormal-adjacent).
    pub fn f32(&mut self) -> f32 {
        match self.range(0, 16) {
            0 => 0.0,
            1 => -0.0,
            2 => f32::INFINITY,
            3 => f32::NEG_INFINITY,
            4 => f32::NAN,
            5 => f32::MIN_POSITIVE / 2.0,
            _ => f32::from_bits(self.next_u32()),
        }
    }

    /// A finite, comfortably-ranged `f32` (no NaN/Inf/denormal), for tests
    /// that accumulate arithmetic.
    pub fn f32_normal(&mut self) -> f32 {
        (self.range(0, 2_000_001) as f32 - 1_000_000.0) / 1024.0
    }

    /// An LCS gamma knob in `(0, 1]`, quantized to hundredths like the
    /// paper's sweep.
    pub fn gamma(&mut self) -> f64 {
        self.range(1, 101) as f64 / 100.0
    }

    /// A vector of `len in [min_len, max_len]` draws from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `min_len > max_len` or `lo >= hi`.
    pub fn vec(&mut self, lo: u64, hi: u64, min_len: usize, max_len: usize) -> Vec<u64> {
        assert!(min_len <= max_len, "empty length range {min_len}..={max_len}");
        let len = self.range(min_len as u64, max_len as u64 + 1) as usize;
        (0..len).map(|_| self.range(lo, hi)).collect()
    }
}

/// A unique, self-cleaning scratch directory for filesystem fixtures
/// (result stores, trace outputs, server state).
///
/// The directory is created immediately under the system temp dir, named
/// by tag, process id, and a process-wide counter — so parallel tests in
/// one binary and concurrent test binaries never collide — and removed
/// (best-effort) on drop.
#[derive(Debug)]
pub struct TempDir(std::path::PathBuf);

impl TempDir {
    /// Creates `<tmp>/<tag>-<pid>-<n>/`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir creatable");
        TempDir(dir)
    }

    /// The directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector for seed 0 from the published SplitMix64 algorithm;
    /// guards the frozen stream that seeded workload inputs depend on.
    #[test]
    fn splitmix64_stream_is_frozen() {
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Gen::new(42);
        let mut b = Gen::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_is_in_bounds_and_unbiased_for_pow2_adjacent_spans() {
        let mut g = Gen::new(7);
        // A span just above a power of two is where modulo bias is worst;
        // check bounds and rough uniformity over the first/last buckets.
        let span = (1u64 << 33) + 3;
        for _ in 0..10_000 {
            let v = g.range(10, 10 + span);
            assert!((10..10 + span).contains(&v));
        }
        // Small-span uniformity: chi-square-ish sanity over 6 buckets.
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[g.range(0, 6) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} far from 10k");
        }
    }

    #[test]
    fn range_handles_unit_and_full_spans() {
        let mut g = Gen::new(3);
        assert_eq!(g.range(5, 6), 5);
        // Full u64 span: threshold is 0, never rejects.
        for _ in 0..10 {
            let _ = g.range(0, u64::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Gen::new(0).range(4, 4);
    }

    #[test]
    fn vec_respects_length_bounds() {
        let mut g = Gen::new(9);
        for _ in 0..200 {
            let v = g.vec(0, 50, 2, 7);
            assert!((2..=7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn f32_hits_special_values() {
        let mut g = Gen::new(11);
        let draws: Vec<f32> = (0..4096).map(|_| g.f32()).collect();
        assert!(draws.iter().any(|v| v.is_nan()));
        assert!(draws.iter().any(|v| v.is_infinite()));
        assert!(draws.iter().any(|v| *v == 0.0));
        assert!(draws.iter().any(|v| v.is_finite() && *v != 0.0));
    }

    #[test]
    fn gamma_in_unit_interval() {
        let mut g = Gen::new(13);
        for _ in 0..500 {
            let v = g.gamma();
            assert!(v > 0.0 && v <= 1.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut g = Gen::new(17);
        for _ in 0..100 {
            assert!(!g.chance(0, 4));
            assert!(g.chance(4, 4));
        }
    }
}
