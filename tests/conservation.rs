//! Conservation invariants on [`SimStats`]: counters that must balance at
//! quiesce no matter which scheduling policies ran. A violation means the
//! simulator lost or double-counted work — exactly the kind of bug that
//! silently skews every experiment downstream.

use gpgpu_repro::sim::SimStats;
use gpgpu_repro::tbs::{CtaPolicy, WarpPolicy};
use gpgpu_repro::workloads::{by_name, run_workload, Scale};

const MAX_CYCLES: u64 = 50_000_000;

fn run(warp: WarpPolicy, cta: CtaPolicy) -> SimStats {
    let mut w = by_name("vecadd", Scale::Tiny).expect("suite member");
    let factory = warp.factory();
    run_workload(
        w.as_mut(),
        gpgpu_repro::sim::GpuConfig::test_small(),
        factory.as_ref(),
        cta.scheduler(),
        MAX_CYCLES,
    )
    .unwrap_or_else(|e| panic!("{warp}/{cta}: {e}"))
    .stats
}

#[test]
fn counters_balance_under_every_policy_combination() {
    for (warp_name, warp) in WarpPolicy::all_named() {
        for (cta_name, cta) in CtaPolicy::all_named() {
            let stats = run(warp, cta);
            let tag = format!("{warp_name}/{cta_name}");

            // Every load that entered the fabric came back out: the
            // memory system holds no requests at quiesce.
            assert_eq!(
                stats.fabric.loads_in, stats.fabric.loads_out,
                "{tag}: loads in flight at quiesce"
            );

            // Per-kernel instruction attribution covers every issued
            // instruction exactly once.
            let per_kernel: u64 = stats.kernels.iter().map(|k| k.instructions).sum();
            assert_eq!(
                per_kernel, stats.instructions,
                "{tag}: per-kernel instructions must sum to the device total"
            );

            // Every CTA of every kernel retired on exactly one core.
            let cores_completed: u64 = stats.cores.iter().map(|c| c.ctas_completed).sum();
            let grid_ctas: u64 = stats.kernels.iter().map(|k| k.ctas).sum();
            assert_eq!(
                cores_completed, grid_ctas,
                "{tag}: per-core CTA completions must cover every grid CTA"
            );
            assert!(
                stats.kernels.iter().all(|k| k.done),
                "{tag}: run_workload returns only after completion"
            );
        }
    }
}
