//! Quickstart: build a kernel with the ISA builder, run it on the
//! simulated Fermi-class GPU, and verify the output.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpgpu_repro::isa::{CmpOp, CmpTy, Dim2, KernelBuilder, KernelDescriptor};
use gpgpu_repro::sim::{GpuConfig, GpuDevice};
use gpgpu_repro::tbs::{CtaPolicy, WarpPolicy};
use std::sync::Arc;

fn main() {
    // 1. Write a kernel: c[i] = a[i] * 3 + b[i] for i < n.
    let mut k = KernelBuilder::new("triad", Dim2::x(256));
    let pa = k.param(0);
    let pb = k.param(1);
    let pc = k.param(2);
    let pn = k.param(3);
    let gid = k.global_tid_x();
    let in_range = k.setp(CmpOp::Lt, CmpTy::U64, gid, pn);
    k.if_then(in_range, |k| {
        let off = k.shl(gid, 2u64);
        let ea = k.iadd(pa, off);
        let eb = k.iadd(pb, off);
        let ec = k.iadd(pc, off);
        let va = k.ld_global_u32(ea, 0);
        let vb = k.ld_global_u32(eb, 0);
        let t = k.imul(va, 3u64);
        let vc = k.iadd(t, vb);
        k.st_global_u32(vc, ec, 0);
    });
    let program = Arc::new(k.build().expect("well-formed kernel"));
    println!("kernel:\n{}", program.disassemble());

    // 2. Build the GPU with the paper's reference policies (GTO warp
    //    scheduler, round-robin CTA scheduler).
    let warp = WarpPolicy::Gto.factory();
    let mut gpu = GpuDevice::new(
        GpuConfig::fermi(),
        warp.as_ref(),
        CtaPolicy::Baseline(None).scheduler(),
    );

    // 3. Set up device memory.
    let n: u32 = 64 * 1024;
    let bytes = u64::from(n) * 4;
    let a = gpu.alloc(bytes);
    let b = gpu.alloc(bytes);
    let c = gpu.alloc(bytes);
    let av: Vec<u32> = (0..n).collect();
    let bv: Vec<u32> = (0..n).map(|i| 1000 + i).collect();
    gpu.mem().write_u32_slice(a, &av);
    gpu.mem().write_u32_slice(b, &bv);

    // 4. Launch and run.
    let desc = KernelDescriptor::builder(program, Dim2::x(n / 256), Dim2::x(256))
        .params([a, b, c, u64::from(n)])
        .build()
        .expect("valid launch");
    let kernel = gpu.launch(desc);
    gpu.run(100_000_000).expect("kernel completes");

    // 5. Inspect results: timing AND functional output.
    let stats = gpu.stats();
    let ks = stats.kernel(kernel).expect("ran");
    println!(
        "cycles = {}, instructions = {}, IPC = {:.2}",
        ks.cycles(),
        ks.instructions,
        ks.ipc()
    );
    println!(
        "L1 miss rate = {:.3}, DRAM row-hit rate = {:.3}",
        stats.l1.miss_rate(),
        stats.fabric.dram.row_hit_rate()
    );
    let out = gpu.mem_ref().read_u32_vec(c, n as usize);
    for i in 0..n as usize {
        assert_eq!(out[i], av[i] * 3 + bv[i], "element {i}");
    }
    println!("output verified: c[i] == a[i]*3 + b[i] for all {n} elements");
}
