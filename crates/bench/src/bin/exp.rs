//! Experiment CLI: regenerates the paper's tables and figures.
//!
//! ```text
//! exp --all               # run E1..E10 at Small scale
//! exp e3 e5               # run a subset
//! exp --quick --all       # Tiny scale (smoke test)
//! exp --list              # show experiment ids
//! ```
//!
//! Tables are printed and written as CSV under `results/`.

use gpgpu_bench::experiments::{all_ids, run_experiment};
use gpgpu_bench::Harness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut run_all = false;
    let mut ids: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => quick = true,
            "--all" => run_all = true,
            "--list" => {
                for id in all_ids() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: exp [--quick] (--all | e1 e2 ... e10)");
                println!("  --quick  Tiny workloads (smoke test)");
                println!("  --list   list experiment ids");
                return ExitCode::SUCCESS;
            }
            id if id.starts_with('e') => ids.push(id.to_string()),
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }
    if run_all {
        ids = all_ids().into_iter().map(String::from).collect();
    }
    if ids.is_empty() {
        eprintln!("nothing to run; try --all or --help");
        return ExitCode::FAILURE;
    }

    let h = if quick { Harness::quick() } else { Harness::default() };
    let total = std::time::Instant::now();
    for id in &ids {
        let t0 = std::time::Instant::now();
        let tables = run_experiment(id, &h);
        for (i, table) in tables.iter().enumerate() {
            println!("{table}");
            let path = if tables.len() == 1 {
                h.out_dir.join(format!("{id}.csv"))
            } else {
                h.out_dir.join(format!("{id}_{}.csv", (b'a' + i as u8) as char))
            };
            if let Err(e) = table.write_csv(&path) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        println!("[{id} took {:.1?}]\n", t0.elapsed());
    }
    println!("[all experiments took {:.1?}]", total.elapsed());
    ExitCode::SUCCESS
}
