//! E6 — how close LCS's online estimate gets to the oracle limit: the
//! per-core limits LCS decided during the run versus the best static limit
//! from an offline sweep.

use super::{r3, LIMIT_SWEEP};
use crate::{Harness, RunEngine, RunSpec, Table};
use gpgpu_workloads::by_name;
use tbs_core::{CtaPolicy, WarpPolicy};

/// Workloads shown in the accuracy table (one per class plus extremes).
pub const ACCURACY_SUITE: [&str; 6] = [
    "vecadd",
    "stridedcopy",
    "spmv-ell",
    "gather",
    "fmaheavy",
    "matmul-tiled",
];

/// Per accuracy workload: the LCS run (whose result carries the decided
/// limits), the unlimited baseline, and the static-limit oracle sweep.
pub(crate) fn plan(h: &Harness) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for name in ACCURACY_SUITE {
        specs.push(RunSpec::single(h, name, WarpPolicy::Gto, CtaPolicy::Lcs(0.7)));
        specs.push(RunSpec::single(h, name, WarpPolicy::Gto, CtaPolicy::Baseline(None)));
        for limit in LIMIT_SWEEP {
            specs.push(RunSpec::single(
                h,
                name,
                WarpPolicy::Gto,
                CtaPolicy::Baseline(Some(limit)),
            ));
        }
    }
    specs
}

/// For each workload: run LCS, extract the decided per-core limits, and
/// compare with the oracle.
pub fn run(h: &Harness) -> Vec<Table> {
    let engine = h.engine();
    engine.execute_batch(&plan(h));
    collect(h, &engine)
}

/// Tabulates from memoized results (the engine captures LCS's decided
/// limits on every LCS run, so no device access is needed here).
pub(crate) fn collect(h: &Harness, engine: &RunEngine) -> Vec<Table> {
    let mut t = Table::new(
        "E6: LCS-decided per-core CTA limit vs the static oracle",
        &[
            "workload", "hw-max", "lcs-min", "lcs-median", "lcs-max", "oracle-limit",
            "oracle-speedup",
        ],
    );
    for name in ACCURACY_SUITE {
        let lcs = engine.get(&RunSpec::single(h, name, WarpPolicy::Gto, CtaPolicy::Lcs(0.7)));
        // Occupancy limit for context.
        let mut scratch = gpgpu_sim::GlobalMem::new();
        let desc = by_name(name, h.scale).expect("member").prepare(&mut scratch);
        let hw_max = gpgpu_sim::core_model::Core::hw_max_ctas(&h.gpu, &desc);

        // The utilization guard reports u32::MAX ("keep the hardware
        // maximum"); clamp for display.
        let mut limits: Vec<u32> = lcs
            .lcs_limits
            .as_ref()
            .expect("LCS run carries decided limits")
            .iter()
            .map(|&l| l.min(hw_max))
            .collect();
        limits.sort_unstable();
        let (lo, med, hi) = if limits.is_empty() {
            (0, 0, 0)
        } else {
            (
                limits[0],
                limits[limits.len() / 2],
                *limits.last().expect("nonempty"),
            )
        };

        // Oracle from the static sweep.
        let base = engine.get(&RunSpec::single(h, name, WarpPolicy::Gto, CtaPolicy::Baseline(None)));
        let mut oracle = (u32::MAX, base.cycles());
        for limit in LIMIT_SWEEP {
            let o = engine.get(&RunSpec::single(
                h,
                name,
                WarpPolicy::Gto,
                CtaPolicy::Baseline(Some(limit)),
            ));
            if o.cycles() < oracle.1 {
                oracle = (limit, o.cycles());
            }
        }
        let oracle_limit = if oracle.0 == u32::MAX {
            format!("max({hw_max})")
        } else {
            oracle.0.to_string()
        };
        t.push_row(vec![
            name.to_string(),
            hw_max.to_string(),
            lo.to_string(),
            med.to_string(),
            hi.to_string(),
            oracle_limit,
            r3(base.cycles() as f64 / oracle.1 as f64),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_table_builds() {
        let tables = run(&Harness::quick());
        assert_eq!(tables[0].len(), ACCURACY_SUITE.len());
    }
}
