//! Parameterized generated-workload families, addressed by name.
//!
//! A family name is a compact spec string:
//!
//! ```text
//! gen:<family>/<knob>=<value>,<knob>=<value>,...
//! ```
//!
//! e.g. `gen:stream/stride=33,ffma=16` or `gen:rand/seed=7,segs=9`. The
//! string is the workload's *name*, so it flows through `RunSpec` content
//! keys unchanged — generated runs dedup, persist in the result store,
//! and record/replay exactly like hand-written suite members. Parsing is
//! strict (unknown families or knobs, malformed pairs, and out-of-range
//! values all reject) so a spec either names one deterministic workload
//! or nothing.
//!
//! Four families cover the axes the scheduling experiments sweep:
//!
//! | family    | knobs                  | axis                               |
//! |-----------|------------------------|------------------------------------|
//! | `stream`  | `stride`, `ffma`       | coalescing, compute intensity      |
//! | `tile`    | `reuse`, `stride`, `pad` | reuse distance, smem pressure    |
//! | `diverge` | `frac`, `work`         | divergence fraction, imbalance     |
//! | `rand`    | `seed`, `segs`         | randomized control flow (fuzzing)  |
//!
//! Every family is a [`DslKernel`], so `verify` re-executes the statement
//! tree on the CPU mirror and compares the output region word-for-word —
//! the functional oracle is part of the workload.

use crate::common::{Scale, SplitMix64, VerifyError, Workload, WorkloadClass};
use gpgpu_isa::dsl::{gen_kernel, DslKernel, GenCfg, MirrorMem};
use gpgpu_isa::{AluOp, CmpOp, CmpTy, Dim2, KernelDescriptor, SpecialReg};
use gpgpu_sim::GlobalMem;
use std::sync::Arc;

const BLOCK: u32 = 256;

/// Which parameterized family a spec names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Strided streaming pass with an FFMA chain per element.
    Stream,
    /// Shared-memory tile with configurable reuse and smem padding.
    Tile,
    /// Controlled-divergence kernel: a fraction of each 16-thread band
    /// takes a heavy loop path.
    Diverge,
    /// A seeded random kernel from [`gen_kernel`].
    Rand,
}

/// A parsed family spec: family plus resolved knob values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySpec {
    /// The family.
    pub family: Family,
    /// Element stride (`stream`, `tile`).
    pub stride: u64,
    /// FFMA chain length (`stream`).
    pub ffma: u64,
    /// Tile re-read iterations (`tile`).
    pub reuse: u64,
    /// Shared-memory padding multiplier (`tile`): occupancy pressure.
    pub pad: u64,
    /// Sixteenths of each thread band taking the heavy path (`diverge`).
    pub frac: u64,
    /// Heavy-path loop trips (`diverge`).
    pub work: u64,
    /// Generator seed (`rand`).
    pub seed: u64,
    /// Generator segment count (`rand`).
    pub segs: u64,
}

impl FamilySpec {
    fn defaults(family: Family) -> Self {
        FamilySpec {
            family,
            stride: 1,
            ffma: 0,
            reuse: 8,
            pad: 1,
            frac: 8,
            work: 16,
            seed: 1,
            segs: 6,
        }
    }

    /// Parses `gen:<family>/<k=v,...>`. Returns `None` on any unknown
    /// family, unknown or duplicated knob, malformed pair, or
    /// out-of-range value.
    pub fn parse(name: &str) -> Option<FamilySpec> {
        let rest = name.strip_prefix("gen:")?;
        let (fam, knobs) = match rest.split_once('/') {
            Some((f, k)) => (f, k),
            None => (rest, ""),
        };
        let family = match fam {
            "stream" => Family::Stream,
            "tile" => Family::Tile,
            "diverge" => Family::Diverge,
            "rand" => Family::Rand,
            _ => return None,
        };
        let mut spec = FamilySpec::defaults(family);
        let mut seen: Vec<&str> = Vec::new();
        for pair in knobs.split(',').filter(|p| !p.is_empty()) {
            let (key, val) = pair.split_once('=')?;
            if seen.contains(&key) {
                return None;
            }
            seen.push(key);
            let v: u64 = val.parse().ok()?;
            let allowed: &[&str] = match family {
                Family::Stream => &["stride", "ffma"],
                Family::Tile => &["reuse", "stride", "pad"],
                Family::Diverge => &["frac", "work"],
                Family::Rand => &["seed", "segs"],
            };
            if !allowed.contains(&key) {
                return None;
            }
            match key {
                "stride" if v >= 1 => spec.stride = v,
                "ffma" if v <= 256 => spec.ffma = v,
                "reuse" if v <= 1024 => spec.reuse = v,
                "pad" if (1..=32).contains(&v) => spec.pad = v,
                "frac" if v <= 16 => spec.frac = v,
                "work" if v <= 1024 => spec.work = v,
                "seed" => spec.seed = v,
                "segs" if v <= 16 => spec.segs = v,
                _ => return None,
            }
        }
        Some(spec)
    }
}

/// FNV-1a of the spec string: a stable input-data seed so each spec gets
/// distinct-but-reproducible contents.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the family's kernel. Returns the kernel and its shared-memory
/// bytes per CTA.
fn build_family(spec: &FamilySpec) -> (DslKernel, u64) {
    match spec.family {
        Family::Stream => {
            // out[i] = chain(in[(i*stride) % n]); strided input access
            // shreds coalescing, the FFMA chain dials compute intensity.
            let mut d = DslKernel::new("gen-stream", Dim2::x(BLOCK));
            let pin = d.param(0);
            let pout = d.param(1);
            let pn = d.param(2);
            let gid = d.global_tid_x();
            let scaled = d.imul(gid, spec.stride);
            let idx = d.urem(scaled, pn);
            let soff = d.shl(idx, 2u64);
            let ein = d.iadd(pin, soff);
            let v = d.ld_global_u32(ein, 0);
            let acc = d.movi(1.0f32);
            d.ffma_chain(acc, v, spec.ffma as usize);
            d.alu_to(AluOp::Xor, acc, acc, v);
            let doff = d.shl(gid, 2u64);
            let eout = d.iadd(pout, doff);
            d.st_global_u32(acc, eout, 0);
            (d, 0)
        }
        Family::Tile => {
            // Stage one word per thread into shared memory, then re-read
            // the tile `reuse` times at `stride` distance. `pad` inflates
            // the declared smem footprint without touching behavior —
            // pure occupancy pressure, the paper's central lever.
            let mut d = DslKernel::new("gen-tile", Dim2::x(BLOCK));
            let pin = d.param(0);
            let pout = d.param(1);
            let gid = d.global_tid_x();
            let lid = d.special(SpecialReg::TidX);
            let off = d.shl(gid, 2u64);
            let ein = d.iadd(pin, off);
            let v = d.ld_global_u32(ein, 0);
            let saddr = d.shl(lid, 2u64);
            d.st_shared_u32(v, saddr, 0);
            d.bar();
            let acc = d.movi(0u64);
            d.for_range(0u64, spec.reuse, 1u64, |d, j| {
                let t = d.imad(j, spec.stride, lid);
                let m = d.and(t, u64::from(BLOCK - 1));
                let a4 = d.shl(m, 2u64);
                let sv = d.ld_shared_u32(a4, 0);
                d.alu_to(AluOp::IAdd, acc, acc, sv);
            });
            d.bar();
            let eout = d.iadd(pout, off);
            d.st_global_u32(acc, eout, 0);
            (d, u64::from(BLOCK) * 4 * spec.pad)
        }
        Family::Diverge => {
            // frac/16 of each 16-thread band loops `work` times; the rest
            // take a single cheap op. Intra-warp divergence plus
            // inter-warp progress imbalance.
            let mut d = DslKernel::new("gen-diverge", Dim2::x(BLOCK));
            let pin = d.param(0);
            let pout = d.param(1);
            let gid = d.global_tid_x();
            let off = d.shl(gid, 2u64);
            let ein = d.iadd(pin, off);
            let v = d.ld_global_u32(ein, 0);
            let acc = d.movi(0u64);
            d.alu_to(AluOp::IAdd, acc, acc, v);
            let band = d.and(gid, 15u64);
            let p = d.setp(CmpOp::Lt, CmpTy::U64, band, spec.frac);
            d.if_then_else(
                p,
                |d| {
                    d.for_range(0u64, spec.work, 1u64, |d, j| {
                        d.alu_to(AluOp::IMul, acc, acc, 0x9E37_79B9u64);
                        d.alu_to(AluOp::IAdd, acc, acc, j);
                    });
                },
                |d| d.alu_to(AluOp::Xor, acc, acc, 0x5555_5555u64),
            );
            let eout = d.iadd(pout, off);
            d.st_global_u32(acc, eout, 0);
            (d, 0)
        }
        Family::Rand => {
            let cfg = GenCfg {
                block: Dim2::x(BLOCK),
                segments: spec.segs as usize,
                smem: true,
                divergence: true,
                loops: true,
            };
            let gk = gen_kernel(&mut gpgpu_testkit::Gen::new(spec.seed), &cfg);
            (gk.kernel, gk.smem_bytes)
        }
    }
}

/// A generated workload: a [`FamilySpec`] instantiated at a [`Scale`],
/// verified by the DSL's CPU mirror.
#[derive(Debug)]
pub struct GenWorkload {
    name: String,
    spec: FamilySpec,
    n: u32,
    built: Option<BuiltGen>,
}

#[derive(Debug)]
struct BuiltGen {
    kernel: DslKernel,
    grid: Dim2,
    params: Vec<u64>,
    in_base: u64,
    out_base: u64,
}

impl GenWorkload {
    /// Parses a `gen:` spec string into a workload at the given scale.
    /// Returns `None` if the string is not a valid spec.
    pub fn from_name(name: &str, scale: Scale) -> Option<GenWorkload> {
        let spec = FamilySpec::parse(name)?;
        // One word in, one word out per thread; multiples of the block so
        // every output slot is written (the mirror comparison relies on
        // full coverage).
        let n = match scale {
            Scale::Tiny => 16 * 1024,
            Scale::Small => 192 * 1024,
            Scale::Large => 512 * 1024,
            Scale::Full => 1024 * 1024,
        };
        Some(GenWorkload { name: name.to_string(), spec, n, built: None })
    }

    /// The parsed spec.
    pub fn spec(&self) -> &FamilySpec {
        &self.spec
    }
}

impl Workload for GenWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> WorkloadClass {
        match self.spec.family {
            Family::Stream => WorkloadClass::Memory,
            Family::Tile => WorkloadClass::Cache,
            Family::Diverge | Family::Rand => WorkloadClass::Compute,
        }
    }

    fn prepare(&mut self, gmem: &mut GlobalMem) -> KernelDescriptor {
        let n = self.n;
        let in_base = gmem.alloc(u64::from(n) * 4);
        let out_base = gmem.alloc(u64::from(n) * 4);
        let mut rng = SplitMix64::new(fnv1a(&self.name));
        let iv: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
        gmem.write_u32_slice(in_base, &iv);

        let (kernel, smem) = build_family(&self.spec);
        let prog = Arc::new(kernel.compile().expect("family kernels are well-formed"));
        let grid = Dim2::x(n / BLOCK);
        let params = vec![in_base, out_base, u64::from(n)];
        self.built = Some(BuiltGen {
            kernel,
            grid,
            params: params.clone(),
            in_base,
            out_base,
        });
        KernelDescriptor::builder(prog, grid, Dim2::x(BLOCK))
            .smem_per_cta(smem as u32)
            .params(params)
            .build()
            .expect("valid launch")
    }

    fn verify(&self, gmem: &GlobalMem) -> Result<(), VerifyError> {
        let b = self.built.as_ref().expect("prepare() ran");
        let mut mm = MirrorMem::new();
        mm.write_u32_slice(b.in_base, &gmem.read_u32_vec(b.in_base, self.n as usize));
        b.kernel
            .mirror(b.grid, &b.params, &mut mm)
            .map_err(|e| VerifyError {
                workload: self.name.clone(),
                detail: format!("mirror failed: {e}"),
            })?;
        let got = gmem.read_u32_vec(b.out_base, self.n as usize);
        let expect = mm.read_u32_vec(b.out_base, self.n as usize);
        match expect.iter().zip(&got).position(|(e, g)| e != g) {
            None => Ok(()),
            Some(i) => Err(VerifyError {
                workload: self.name.clone(),
                detail: format!(
                    "out[{i}] = {:#x}, mirror expected {:#x}",
                    got[i], expect[i]
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_workload;
    use gpgpu_sim::GpuConfig;
    use tbs_core::{CtaPolicy, WarpPolicy};

    #[test]
    fn parse_accepts_valid_specs() {
        let s = FamilySpec::parse("gen:stream/stride=33,ffma=16").unwrap();
        assert_eq!(s.family, Family::Stream);
        assert_eq!((s.stride, s.ffma), (33, 16));

        let s = FamilySpec::parse("gen:tile/reuse=64,pad=4").unwrap();
        assert_eq!(s.family, Family::Tile);
        assert_eq!((s.reuse, s.pad, s.stride), (64, 4, 1));

        // Bare family name takes all defaults.
        let s = FamilySpec::parse("gen:diverge").unwrap();
        assert_eq!((s.frac, s.work), (8, 16));

        assert!(FamilySpec::parse("gen:rand/seed=42,segs=9").is_some());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "vecadd",                    // no gen: prefix
            "gen:unknown",               // unknown family
            "gen:stream/bogus=1",        // unknown knob
            "gen:stream/reuse=4",        // knob from another family
            "gen:stream/stride=0",       // out of range
            "gen:tile/pad=33",           // out of range
            "gen:diverge/frac=17",       // out of range
            "gen:stream/stride",         // no value
            "gen:stream/stride=x",       // not a number
            "gen:stream/stride=1,stride=2", // duplicate
        ] {
            assert!(FamilySpec::parse(bad).is_none(), "{bad} should reject");
        }
    }

    fn run_one(name: &str) {
        let mut w = GenWorkload::from_name(name, Scale::Tiny).expect("valid spec");
        // Tiny is still large for a debug-build unit test; shrink.
        w.n = 2048;
        let factory = WarpPolicy::Gto.factory();
        run_workload(
            &mut w,
            GpuConfig::test_small(),
            factory.as_ref(),
            CtaPolicy::Baseline(None).scheduler(),
            50_000_000,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    }

    /// Every family runs on the simulator and passes the CPU-mirror
    /// functional oracle (verify is mirror-based).
    #[test]
    fn families_pass_mirror_oracle_on_device() {
        for name in [
            "gen:stream/stride=33,ffma=8",
            "gen:tile/reuse=16,stride=3,pad=4",
            "gen:diverge/frac=5,work=24",
            "gen:rand/seed=7,segs=8",
        ] {
            run_one(name);
        }
    }

    #[test]
    fn same_spec_same_kernel_and_inputs() {
        let mk = |name: &str| {
            let mut w = GenWorkload::from_name(name, Scale::Tiny).unwrap();
            let mut g = GlobalMem::new();
            let d = w.prepare(&mut g);
            (d.program().as_ref().clone(), g.content_hash())
        };
        let (p1, h1) = mk("gen:rand/seed=42,segs=9");
        let (p2, h2) = mk("gen:rand/seed=42,segs=9");
        assert_eq!(p1, p2);
        assert_eq!(h1, h2);
        let (p3, _) = mk("gen:rand/seed=43,segs=9");
        assert_ne!(p1, p3);
    }
}
