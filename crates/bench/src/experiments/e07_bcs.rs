//! E7 — BCS + BAWS on the locality suite: speedup over the baseline and
//! the L1-miss/DRAM-row-hit movement that explains it, including the
//! BCS-without-BAWS ablation.

use super::{r3, LOCALITY_SUITE};
use crate::{Harness, RunEngine, RunSpec, Table};
use tbs_core::{CtaPolicy, WarpPolicy};

/// Baseline, BCS+GTO, and BCS+BAWS per locality workload.
pub(crate) fn plan(h: &Harness) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for name in LOCALITY_SUITE {
        specs.push(RunSpec::single(h, name, WarpPolicy::Gto, CtaPolicy::Baseline(None)));
        specs.push(RunSpec::single(h, name, WarpPolicy::Gto, CtaPolicy::Bcs(2)));
        specs.push(RunSpec::single(h, name, WarpPolicy::Baws(2), CtaPolicy::Bcs(2)));
    }
    specs
}

/// Runs baseline / BCS+GTO / BCS+BAWS for each locality workload.
pub fn run(h: &Harness) -> Vec<Table> {
    let engine = h.engine();
    engine.execute_batch(&plan(h));
    collect(h, &engine)
}

/// Tabulates from memoized results.
pub(crate) fn collect(h: &Harness, engine: &RunEngine) -> Vec<Table> {
    let mut t = Table::new(
        "E7: BCS(2) and BAWS vs baseline (GTO + round-robin)",
        &[
            "workload", "base-cycles", "bcs-gto", "bcs-baws", "l1-miss-base",
            "l1-miss-bcs-baws", "rowhit-base", "rowhit-bcs-baws",
        ],
    );
    let mut geo = 1.0f64;
    for name in LOCALITY_SUITE {
        let base = engine.get(&RunSpec::single(h, name, WarpPolicy::Gto, CtaPolicy::Baseline(None)));
        let bcs = engine.get(&RunSpec::single(h, name, WarpPolicy::Gto, CtaPolicy::Bcs(2)));
        let baws = engine.get(&RunSpec::single(h, name, WarpPolicy::Baws(2), CtaPolicy::Bcs(2)));
        let s_bcs = base.cycles() as f64 / bcs.cycles() as f64;
        let s_baws = base.cycles() as f64 / baws.cycles() as f64;
        geo *= s_baws;
        t.push_row(vec![
            name.to_string(),
            base.cycles().to_string(),
            r3(s_bcs),
            r3(s_baws),
            r3(base.stats.l1.miss_rate()),
            r3(baws.stats.l1.miss_rate()),
            r3(base.stats.fabric.dram.row_hit_rate()),
            r3(baws.stats.fabric.dram.row_hit_rate()),
        ]);
    }
    let mut s = Table::new("E7 summary", &["metric", "value"]);
    s.push_row(vec![
        "bcs-baws-geomean".into(),
        r3(geo.powf(1.0 / LOCALITY_SUITE.len() as f64)),
    ]);
    vec![t, s]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcs_table_builds() {
        let tables = run(&Harness::quick());
        assert_eq!(tables[0].len(), LOCALITY_SUITE.len());
        for v in tables[0].column_f64("bcs-baws") {
            assert!(v > 0.4, "BCS must not catastrophically regress");
        }
    }
}
