//! Concurrent kernel execution (CKE) policies (the paper's third
//! mechanism).
//!
//! LCS shows that the hardware-maximum CTA count is often wasteful; the
//! slots and resources it frees can host CTAs of a *different* kernel on
//! the *same* core. The paper compares three regimes:
//!
//! * **Serial** — one kernel at a time (expressed with
//!   [`GpuDevice::launch_after`](gpgpu_sim::GpuDevice::launch_after); no
//!   policy type needed).
//! * **Leftover CKE** ([`LeftoverCke`]) — the NVIDIA-style comparator:
//!   kernels share the GPU only at *core* granularity; a core hosts CTAs
//!   of one kernel at a time, and a later kernel receives only the cores
//!   the earlier one does not occupy.
//! * **Mixed CKE** ([`MixedCke`]) — the paper's proposal: LCS decides how
//!   many CTAs the leading kernel actually needs per core, and the
//!   remaining per-core slots/resources are filled with the trailing
//!   kernel's CTAs, mixing (typically) a memory-intensive kernel with a
//!   compute-intensive one on every core.

use crate::lcs::Lcs;
use gpgpu_sim::{
    CtaCompleteEvent, CtaScheduler, Dispatch, DispatchView, KernelId, PolicyDecision,
};

/// Core-granular ("leftover") concurrent kernel execution: a core hosts
/// CTAs of at most one kernel at a time, earlier launches first.
#[derive(Debug)]
pub struct LeftoverCke {
    cursor: usize,
}

impl LeftoverCke {
    /// A fresh leftover-CKE scheduler.
    pub fn new() -> Self {
        LeftoverCke { cursor: 0 }
    }
}

impl Default for LeftoverCke {
    fn default() -> Self {
        Self::new()
    }
}

impl CtaScheduler for LeftoverCke {
    fn name(&self) -> &str {
        "leftover-cke"
    }

    fn select(&mut self, view: &DispatchView<'_>) -> Option<Dispatch> {
        let n = view.num_cores();
        for k in view.kernels() {
            if k.remaining == 0 {
                continue;
            }
            for i in 0..n {
                let core = (self.cursor + i) % n;
                let info = view.core(core);
                // Exclusive cores: skip cores hosting any other kernel.
                if info.cta_count > info.ctas_of(k.id) {
                    continue;
                }
                if info.capacity_for(k.id) == 0 {
                    continue;
                }
                self.cursor = (core + 1) % n;
                return Some(Dispatch {
                    core,
                    kernel: k.id,
                    count: 1,
                });
            }
        }
        None
    }
}

/// Mixed concurrent kernel execution: LCS throttling for every running
/// kernel, with later kernels filling the per-core slots earlier kernels
/// do not need.
///
/// Mechanically this is LCS's dispatch rule applied across the whole
/// kernel queue — the leading kernel monopolizes cores during its
/// monitoring period, then shrinks to its estimated limit, and the
/// trailing kernel's CTAs flow into the freed slots of the *same* cores.
#[derive(Debug)]
pub struct MixedCke {
    inner: Lcs,
}

impl MixedCke {
    /// Mixed CKE with the default LCS threshold (`gamma = 0.7`).
    pub fn new() -> Self {
        MixedCke { inner: Lcs::new() }
    }

    /// Mixed CKE with an explicit LCS threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < gamma <= 1.0`.
    pub fn with_gamma(gamma: f64) -> Self {
        MixedCke {
            inner: Lcs::with_gamma(gamma),
        }
    }

    /// The per-core CTA limit decided for `(core, kernel)`, if any.
    pub fn limit_of(&self, core: usize, kernel: KernelId) -> Option<u32> {
        self.inner.limit_of(core, kernel)
    }
}

impl Default for MixedCke {
    fn default() -> Self {
        Self::new()
    }
}

impl CtaScheduler for MixedCke {
    fn name(&self) -> &str {
        "mixed-cke"
    }

    fn on_cta_complete(&mut self, ev: &CtaCompleteEvent) {
        self.inner.on_cta_complete(ev);
    }

    fn on_kernel_finish(&mut self, kernel: KernelId) {
        self.inner.on_kernel_finish(kernel);
    }

    fn select(&mut self, view: &DispatchView<'_>) -> Option<Dispatch> {
        self.inner.select(view)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn set_trace_enabled(&mut self, on: bool) {
        self.inner.set_trace_enabled(on);
    }

    fn take_trace_events(&mut self) -> Vec<PolicyDecision> {
        // The inner LCS makes the per-core limit decisions; co-schedule
        // admissions are emitted by the device as `CkeAdmit` events.
        self.inner.take_trace_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_sim::{CoreDispatchInfo, CtaIssueSample, KernelSummary};

    fn two_kernels(rem0: u64, rem1: u64) -> Vec<KernelSummary> {
        [(0, rem0), (1, rem1)]
            .into_iter()
            .map(|(id, remaining)| KernelSummary {
                id: KernelId(id),
                next_cta: 0,
                remaining,
                total_ctas: remaining,
                warps_per_cta: 4,
            })
            .collect()
    }

    fn info(k0: u32, k1: u32, cap0: u32, cap1: u32) -> CoreDispatchInfo {
        CoreDispatchInfo {
            cta_count: k0 + k1,
            kernel_ctas: vec![(KernelId(0), k0), (KernelId(1), k1)],
            capacity: vec![(KernelId(0), cap0), (KernelId(1), cap1)],
            completed: vec![(KernelId(0), 0), (KernelId(1), 0)],
        }
    }

    #[test]
    fn leftover_keeps_cores_exclusive() {
        let kernels = two_kernels(0, 100); // kernel 0 fully dispatched
        // Core 0 hosts kernel-0 CTAs; core 1 is empty.
        let infos = vec![info(4, 0, 4, 4), info(0, 0, 8, 8)];
        let view = DispatchView::new(0, &kernels, &infos);
        let mut s = LeftoverCke::new();
        let d = s.select(&view).unwrap();
        assert_eq!(d.kernel, KernelId(1));
        assert_eq!(d.core, 1, "kernel 1 may not enter core 0");
    }

    #[test]
    fn leftover_prioritizes_earlier_kernel() {
        let kernels = two_kernels(10, 10);
        let infos = vec![info(0, 0, 8, 8)];
        let view = DispatchView::new(0, &kernels, &infos);
        let mut s = LeftoverCke::new();
        assert_eq!(s.select(&view).unwrap().kernel, KernelId(0));
    }

    #[test]
    fn leftover_blocks_when_all_cores_taken() {
        let kernels = two_kernels(0, 100);
        let infos = vec![info(4, 0, 4, 4)];
        let view = DispatchView::new(0, &kernels, &infos);
        let mut s = LeftoverCke::new();
        assert_eq!(s.select(&view), None);
    }

    #[test]
    fn mixed_fills_throttled_cores_with_second_kernel() {
        let mut s = MixedCke::new();
        // Kernel 0's first CTA completes on core 0 with a memory-bound
        // profile: limit 1.
        // Long window => low issue utilization => the guard stays out of
        // the way and the skew throttles.
        s.on_cta_complete(&CtaCompleteEvent {
            core: 0,
            kernel: KernelId(0),
            cta_id: 0,
            cycle: 100_000,
            completed_on_core: 1,
            core_kernel_issued: 0,
            slot_snapshot: vec![
                CtaIssueSample {
                    kernel: KernelId(0),
                    cta_id: 0,
                    issued: 1000,
                    running: false,
                },
                CtaIssueSample {
                    kernel: KernelId(0),
                    cta_id: 1,
                    issued: 3,
                    running: true,
                },
            ],
        });
        assert_eq!(s.limit_of(0, KernelId(0)), Some(1));
        // Core 0 holds 1 CTA of kernel 0 (at its limit) and has room:
        // kernel 1 gets the leftover slots of the SAME core.
        let kernels = two_kernels(100, 100);
        let infos = vec![info(1, 0, 7, 7)];
        let view = DispatchView::new(0, &kernels, &infos);
        let d = s.select(&view).unwrap();
        assert_eq!(d.kernel, KernelId(1));
        assert_eq!(d.core, 0);
    }

    #[test]
    fn mixed_monitoring_gives_lead_kernel_everything() {
        let mut s = MixedCke::new();
        let kernels = two_kernels(100, 100);
        let infos = vec![info(3, 0, 5, 5)];
        let view = DispatchView::new(0, &kernels, &infos);
        let d = s.select(&view).unwrap();
        assert_eq!(d.kernel, KernelId(0), "monitoring phase: no mixing yet");
    }
}
