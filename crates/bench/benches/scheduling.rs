//! Criterion benches over the scheduling policies: one group per
//! experiment family, measuring end-to-end simulated-kernel wall time on
//! tiny inputs (the statistical complement to the `exp` harness, which
//! reports simulated cycles on full inputs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpgpu_sim::GpuConfig;
use gpgpu_workloads::{by_name, run_workload, Scale};
use tbs_core::{CtaPolicy, WarpPolicy};

fn run(name: &str, warp: WarpPolicy, cta: CtaPolicy) -> u64 {
    let mut w = by_name(name, Scale::Tiny).expect("suite member");
    let factory = warp.factory();
    run_workload(
        w.as_mut(),
        GpuConfig::test_small(),
        factory.as_ref(),
        cta.scheduler(),
        50_000_000,
    )
    .expect("runs and verifies")
    .cycles()
}

/// E3/E5 family: baseline vs LCS on a memory-bound and a compute-bound
/// kernel.
fn bench_lcs(c: &mut Criterion) {
    let mut g = c.benchmark_group("lcs");
    g.sample_size(10);
    for name in ["vecadd", "fmaheavy"] {
        g.bench_with_input(BenchmarkId::new("baseline", name), name, |b, n| {
            b.iter(|| run(n, WarpPolicy::Gto, CtaPolicy::Baseline(None)))
        });
        g.bench_with_input(BenchmarkId::new("lcs", name), name, |b, n| {
            b.iter(|| run(n, WarpPolicy::Gto, CtaPolicy::Lcs(0.7)))
        });
    }
    g.finish();
}

/// E4 family: warp schedulers.
fn bench_warp_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("warp-sched");
    g.sample_size(10);
    for (label, warp) in [
        ("lrr", WarpPolicy::Lrr),
        ("gto", WarpPolicy::Gto),
        ("two-level", WarpPolicy::TwoLevel(8)),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| run("stencil2d", warp, CtaPolicy::Baseline(None)))
        });
    }
    g.finish();
}

/// E7 family: BCS + BAWS.
fn bench_bcs(c: &mut Criterion) {
    let mut g = c.benchmark_group("bcs");
    g.sample_size(10);
    g.bench_function("baseline", |b| {
        b.iter(|| run("hotspot", WarpPolicy::Gto, CtaPolicy::Baseline(None)))
    });
    g.bench_function("bcs-baws", |b| {
        b.iter(|| run("hotspot", WarpPolicy::Baws(2), CtaPolicy::Bcs(2)))
    });
    g.finish();
}

criterion_group!(benches, bench_lcs, bench_warp_schedulers, bench_bcs);
criterion_main!(benches);
