//! Wall-clock benches over the scheduling policies: one group per
//! experiment family, measuring end-to-end simulated-kernel wall time on
//! tiny inputs (the statistical complement to the `exp` harness, which
//! reports simulated cycles on full inputs).
//!
//! Plain `Instant`-based timing (median of N runs) — no external bench
//! framework, so the crate builds with no third-party dependencies.

use gpgpu_sim::GpuConfig;
use gpgpu_workloads::{by_name, run_workload, Scale};
use std::time::Instant;
use tbs_core::{CtaPolicy, WarpPolicy};

fn run(name: &str, warp: WarpPolicy, cta: CtaPolicy) -> u64 {
    let mut w = by_name(name, Scale::Tiny).expect("suite member");
    let factory = warp.factory();
    run_workload(
        w.as_mut(),
        GpuConfig::test_small(),
        factory.as_ref(),
        cta.scheduler(),
        50_000_000,
    )
    .expect("runs and verifies")
    .cycles()
}

/// Times `f` over `samples` runs (after one warmup) and prints the median.
fn bench(label: &str, samples: usize, mut f: impl FnMut() -> u64) {
    let sink = f(); // warmup; keep the result observable
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{label:40} median {:8.2} ms  (min {:.2}, max {:.2}, cycles {sink})",
        times[times.len() / 2],
        times[0],
        times[times.len() - 1],
    );
}

fn main() {
    let samples = 5;
    // E3/E5 family: baseline vs LCS on a memory-bound and a compute-bound
    // kernel.
    for name in ["vecadd", "fmaheavy"] {
        bench(&format!("lcs/baseline/{name}"), samples, || {
            run(name, WarpPolicy::Gto, CtaPolicy::Baseline(None))
        });
        bench(&format!("lcs/lcs/{name}"), samples, || {
            run(name, WarpPolicy::Gto, CtaPolicy::Lcs(0.7))
        });
    }
    // E4 family: warp schedulers.
    for (label, warp) in [
        ("lrr", WarpPolicy::Lrr),
        ("gto", WarpPolicy::Gto),
        ("two-level", WarpPolicy::TwoLevel(8)),
    ] {
        bench(&format!("warp-sched/{label}"), samples, || {
            run("stencil2d", warp, CtaPolicy::Baseline(None))
        });
    }
    // E7 family: BCS + BAWS.
    bench("bcs/baseline", samples, || {
        run("hotspot", WarpPolicy::Gto, CtaPolicy::Baseline(None))
    });
    bench("bcs/bcs-baws", samples, || {
        run("hotspot", WarpPolicy::Baws(2), CtaPolicy::Bcs(2))
    });
}
