//! The per-warp SIMT reconvergence stack.
//!
//! Divergent branches partition a warp's active mask; the stack executes
//! one side at a time and merges the lanes back together at the branch's
//! reconvergence PC. The implementation assumes *structured* control flow
//! (both sides of a divergent branch eventually reach its reconvergence
//! PC), which the `gpgpu-isa` builder guarantees.

use gpgpu_isa::Pc;

/// A 32-bit lane mask (bit `i` = lane `i` active).
pub type LaneMask = u32;

/// A full warp: all 32 lanes.
pub const FULL_MASK: LaneMask = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    pc: Pc,
    /// Reconvergence PC; `RPC_NONE` for the root entry.
    rpc: Pc,
    mask: LaneMask,
}

const RPC_NONE: Pc = Pc::MAX;

/// The SIMT stack of one warp. `exited` lanes (threads that executed
/// `Exit`) are tracked by the caller and passed into queries, so the stack
/// itself stays a pure control structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimtStack {
    entries: Vec<Entry>,
}

impl SimtStack {
    /// A stack starting execution at PC 0 with the given initial mask
    /// (lanes beyond a partial CTA's thread count start inactive).
    pub fn new(initial_mask: LaneMask) -> Self {
        SimtStack {
            entries: vec![Entry {
                pc: 0,
                rpc: RPC_NONE,
                mask: initial_mask,
            }],
        }
    }

    /// Pops reconverged/empty entries and returns the current `(pc, mask)`
    /// to execute, or `None` when the warp has finished.
    pub fn sync(&mut self, exited: LaneMask) -> Option<(Pc, LaneMask)> {
        while let Some(top) = self.entries.last() {
            let eff = top.mask & !exited;
            if eff == 0 || top.pc == top.rpc {
                self.entries.pop();
                continue;
            }
            return Some((top.pc, eff));
        }
        None
    }

    /// Whether the warp has no live execution left.
    pub fn is_done(&mut self, exited: LaneMask) -> bool {
        self.sync(exited).is_none()
    }

    /// Advances sequentially (`pc += 1`).
    ///
    /// # Panics
    ///
    /// Panics if called on an empty stack.
    pub fn advance(&mut self) {
        self.entries.last_mut().expect("live stack").pc += 1;
    }

    /// Unconditional jump of the current entry.
    ///
    /// # Panics
    ///
    /// Panics if called on an empty stack.
    pub fn jump(&mut self, target: Pc) {
        self.entries.last_mut().expect("live stack").pc = target;
    }

    /// Executes a (potentially divergent) conditional branch at the current
    /// entry. `taken` is the mask of lanes taking the branch (already
    /// restricted to the current effective mask by the caller), `fall` the
    /// lanes falling through to `pc + 1`.
    ///
    /// Uniform outcomes mutate the top entry in place; divergent outcomes
    /// replace it with a continuation at `reconv` plus one entry per side
    /// (taken side on top, so it executes first).
    ///
    /// # Panics
    ///
    /// Panics if called on an empty stack.
    pub fn branch(&mut self, taken: LaneMask, fall: LaneMask, target: Pc, reconv: Pc) {
        let top = *self.entries.last().expect("live stack");
        debug_assert_eq!(taken & fall, 0, "taken and fall-through must be disjoint");
        if fall == 0 {
            // Uniformly taken.
            self.entries.last_mut().expect("live stack").pc = target;
            return;
        }
        if taken == 0 {
            // Uniformly not taken.
            self.entries.last_mut().expect("live stack").pc += 1;
            return;
        }
        // Divergent: pop the current entry, push continuation + both sides.
        self.entries.pop();
        self.push_if(Entry {
            pc: reconv,
            rpc: top.rpc,
            mask: top.mask,
        });
        self.push_if(Entry {
            pc: top.pc + 1,
            rpc: reconv,
            mask: fall,
        });
        self.push_if(Entry {
            pc: target,
            rpc: reconv,
            mask: taken,
        });
    }

    /// Pushes an entry unless it would pop immediately (empty mask or
    /// already at its reconvergence point — the entry below provides the
    /// continuation in that case).
    fn push_if(&mut self, e: Entry) {
        if e.mask != 0 && e.pc != e.rpc {
            self.entries.push(e);
        }
    }

    /// Current stack depth (diagnostics).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut s = SimtStack::new(FULL_MASK);
        assert_eq!(s.sync(0), Some((0, FULL_MASK)));
        s.advance();
        assert_eq!(s.sync(0), Some((1, FULL_MASK)));
        s.jump(10);
        assert_eq!(s.sync(0), Some((10, FULL_MASK)));
    }

    #[test]
    fn all_exited_finishes() {
        let mut s = SimtStack::new(FULL_MASK);
        assert!(!s.is_done(0));
        assert!(s.is_done(FULL_MASK));
    }

    #[test]
    fn partial_initial_mask() {
        let mut s = SimtStack::new(0xFF);
        assert_eq!(s.sync(0), Some((0, 0xFF)));
        assert!(s.is_done(0xFF));
    }

    #[test]
    fn uniform_branches_do_not_push() {
        let mut s = SimtStack::new(FULL_MASK);
        s.branch(FULL_MASK, 0, 5, 9);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.sync(0), Some((5, FULL_MASK)));
        s.branch(0, FULL_MASK, 2, 9);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.sync(0), Some((6, FULL_MASK)));
    }

    #[test]
    fn divergent_if_executes_taken_then_fall_then_reconverges() {
        // Program shape: pc0 = branch(target=10, reconv=20).
        let mut s = SimtStack::new(FULL_MASK);
        let taken = 0x0000_FFFF;
        let fall = 0xFFFF_0000;
        s.branch(taken, fall, 10, 20);
        // Taken side first.
        assert_eq!(s.sync(0), Some((10, taken)));
        s.jump(20); // taken side reaches reconv
        // Fall-through side next.
        assert_eq!(s.sync(0), Some((1, fall)));
        s.jump(20);
        // Reconverged with the full mask.
        assert_eq!(s.sync(0), Some((20, FULL_MASK)));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn taken_to_reconv_is_immediate() {
        // if_then shape: lanes failing the condition jump straight to the
        // reconvergence point (target == reconv).
        let mut s = SimtStack::new(FULL_MASK);
        let skip = 0xF0F0_F0F0; // lanes skipping the body
        let body = !skip;
        s.branch(skip, body, 7, 7);
        // Body executes first (fall side is the only pushed side).
        assert_eq!(s.sync(0), Some((1, body)));
        s.jump(7);
        assert_eq!(s.sync(0), Some((7, FULL_MASK)));
    }

    #[test]
    fn nested_divergence() {
        let mut s = SimtStack::new(FULL_MASK);
        // Outer: halves diverge, reconv at 100.
        let top = 0xFFFF_0000;
        let bottom = 0x0000_FFFF;
        s.branch(top, bottom, 50, 100);
        assert_eq!(s.sync(0), Some((50, top)));
        // Inner (within taken side at pc 50): quarters diverge, reconv 80.
        let q1 = 0xFF00_0000;
        let q2 = 0x00FF_0000;
        s.branch(q1, q2, 60, 80);
        assert_eq!(s.sync(0), Some((60, q1)));
        s.jump(80);
        assert_eq!(s.sync(0), Some((51, q2)));
        s.jump(80);
        // Inner reconverged: top half together at 80.
        assert_eq!(s.sync(0), Some((80, top)));
        s.jump(100);
        // Outer: bottom half still to run.
        assert_eq!(s.sync(0), Some((1, bottom)));
        s.jump(100);
        assert_eq!(s.sync(0), Some((100, FULL_MASK)));
    }

    #[test]
    fn divergent_loop_exits_lanes_incrementally() {
        // Loop head at pc 0: branch(exit-lanes -> 10, reconv 10); body
        // 1..=2; pc 3 jumps back to 0.
        let mut s = SimtStack::new(0b1111);
        // Iteration 1: lane 3 leaves.
        s.branch(0b1000, 0b0111, 10, 10);
        assert_eq!(s.sync(0), Some((1, 0b0111)));
        s.advance();
        s.advance();
        s.jump(0);
        // Iteration 2: lane 2 leaves.
        s.branch(0b0100, 0b0011, 10, 10);
        assert_eq!(s.sync(0), Some((1, 0b0011)));
        s.jump(0);
        // Iteration 3: the rest leave (uniform).
        s.branch(0b0011, 0, 10, 10);
        assert_eq!(s.sync(0), Some((10, 0b1111)));
        assert_eq!(s.depth(), 1, "loop must not grow the stack");
    }

    #[test]
    fn stack_depth_bounded_across_many_iterations() {
        let mut s = SimtStack::new(FULL_MASK);
        let mut live = FULL_MASK;
        for i in 0..32 {
            // One lane exits the loop per iteration.
            let leaving = 1 << i;
            let staying = live & !leaving;
            s.branch(leaving, staying, 100, 100);
            live = staying;
            if live != 0 {
                assert_eq!(s.sync(0), Some((1, live)));
                assert!(s.depth() <= 3, "depth {} too deep", s.depth());
                s.jump(0);
            }
        }
        assert_eq!(s.sync(0), Some((100, FULL_MASK)));
    }

    #[test]
    fn exited_lanes_shrink_masks_everywhere() {
        let mut s = SimtStack::new(FULL_MASK);
        s.branch(0x0000_00FF, 0xFFFF_FF00, 10, 20);
        // Lanes 0..8 are on the taken side; they exit.
        assert_eq!(s.sync(0), Some((10, 0xFF)));
        let exited = 0xFF;
        // Taken side's entry is now empty and pops; fall side runs.
        assert_eq!(s.sync(exited), Some((1, 0xFFFF_FF00)));
        s.jump(20);
        assert_eq!(s.sync(exited), Some((20, 0xFFFF_FF00)));
    }
}
