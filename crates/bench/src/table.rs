//! Result tables: pretty terminal rendering plus CSV output.

use std::fmt;
use std::io;
use std::path::Path;

/// A rectangular result table with named columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given title and column names.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<T: fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// The value at (row, col) as a string.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Looks up the column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Parses a column as `f64` (non-numeric cells become NaN).
    pub fn column_f64(&self, name: &str) -> Vec<f64> {
        let idx = self.column_index(name).expect("column exists");
        self.rows
            .iter()
            .map(|r| r[idx].parse().unwrap_or(f64::NAN))
            .collect()
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        out.push_str(&csv_row(&self.columns));
        for r in &self.rows {
            out.push_str(&csv_row(r));
        }
        std::fs::write(path, out)
    }
}

fn csv_row(cells: &[String]) -> String {
    let quoted: Vec<String> = cells
        .iter()
        .map(|c| {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect();
    format!("{}\n", quoted.join(","))
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            let row: Vec<String> = r
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", row.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new("demo", &["name", "ipc"]);
        t.push(&["vecadd", "1.25"]);
        t.push(&["saxpy", "0.75"]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, 1), "1.25");
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("vecadd"));
    }

    #[test]
    fn column_parse() {
        let mut t = Table::new("demo", &["w", "x"]);
        t.push(&["a", "1.5"]);
        t.push(&["b", "oops"]);
        let xs = t.column_f64("x");
        assert_eq!(xs[0], 1.5);
        assert!(xs[1].is_nan());
        assert_eq!(t.column_index("w"), Some(0));
        assert_eq!(t.column_index("zz"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(&["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_row(&["a,b".into(), "c\"d".into()]), "\"a,b\",\"c\"\"d\"\n");
        assert_eq!(csv_row(&["plain".into()]), "plain\n");
    }

    #[test]
    fn csv_round_trip_to_disk() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(&["1", "2"]);
        let dir = std::env::temp_dir().join("tbs_table_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).expect("writable");
        let s = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(s, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
