//! End-to-end: every workload runs to completion on the full simulator
//! and verifies its functional output, under both baseline and paper
//! scheduling policies.

use gpgpu_sim::GpuConfig;
use gpgpu_workloads::{run_workload, suite, Scale};
use tbs_core::{CtaPolicy, WarpPolicy};

const MAX_CYCLES: u64 = 50_000_000;

/// Debug builds simulate ~20x slower; cover a representative subset there
/// and the whole suite under `--release` (CI / the experiment harness).
fn suite_for_build() -> Vec<Box<dyn gpgpu_workloads::Workload>> {
    let all = suite(Scale::Tiny);
    if cfg!(debug_assertions) {
        let keep = ["vecadd", "matmul-tiled", "reduction", "stencil2d"];
        all.into_iter()
            .filter(|w| keep.contains(&w.name()))
            .collect()
    } else {
        all
    }
}

fn run_all(warp: WarpPolicy, cta: CtaPolicy) {
    for mut w in suite_for_build() {
        let factory = warp.factory();
        let outcome = run_workload(
            w.as_mut(),
            GpuConfig::test_small(),
            factory.as_ref(),
            cta.scheduler(),
            MAX_CYCLES,
        )
        .unwrap_or_else(|e| panic!("{} under {warp}/{cta}: {e}", w.name()));
        assert!(outcome.cycles() > 0, "{} must take time", w.name());
        assert!(outcome.ipc() > 0.0, "{} must issue", w.name());
    }
}

#[test]
fn suite_verifies_under_gto_baseline() {
    run_all(WarpPolicy::Gto, CtaPolicy::Baseline(None));
}

#[test]
fn suite_verifies_under_lrr_baseline() {
    run_all(WarpPolicy::Lrr, CtaPolicy::Baseline(None));
}

#[test]
fn suite_verifies_under_lcs() {
    run_all(WarpPolicy::Gto, CtaPolicy::Lcs(0.7));
}

#[test]
fn suite_verifies_under_bcs_baws() {
    run_all(WarpPolicy::Baws(2), CtaPolicy::Bcs(2));
}

#[test]
fn suite_verifies_under_two_level() {
    run_all(WarpPolicy::TwoLevel(8), CtaPolicy::Baseline(None));
}

#[test]
fn runs_are_deterministic() {
    let run_once = || {
        let mut w = gpgpu_workloads::by_name("vecadd", Scale::Tiny).expect("exists");
        let factory = WarpPolicy::Gto.factory();
        run_workload(
            w.as_mut(),
            GpuConfig::test_small(),
            factory.as_ref(),
            CtaPolicy::Baseline(None).scheduler(),
            MAX_CYCLES,
        )
        .expect("runs")
        .cycles()
    };
    assert_eq!(run_once(), run_once());
}
