//! A banked, open-row DRAM channel with FR-FCFS arbitration.
//!
//! One channel backs each memory partition. The model captures what the
//! paper's mechanisms interact with: row-buffer locality (consecutive CTAs
//! touching neighbouring lines hit the same row) and bank/bus contention
//! (more concurrent CTAs means more row conflicts and longer queues).
//! Timing parameters are expressed in *core* cycles so the whole simulator
//! runs off one clock.

use crate::req::Cycle;
use std::collections::VecDeque;

/// DRAM channel timing and geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u32,
    /// Line (burst) size in bytes; must divide `row_bytes`.
    pub line_bytes: u32,
    /// Activate latency (row closed -> open), core cycles.
    pub t_rcd: u32,
    /// Precharge latency (close an open row), core cycles.
    pub t_rp: u32,
    /// Column-access latency (CAS), core cycles.
    pub t_cas: u32,
    /// Data-burst occupancy of the shared data bus, core cycles.
    pub t_burst: u32,
    /// Request-queue capacity.
    pub queue_len: u32,
    /// Starvation cap: how many times a serviceable request may be passed
    /// over in favor of a *younger* one (a row hit jumping the queue)
    /// before arbitration falls back to oldest-first until it drains. `0`
    /// disables row-hit reordering entirely (pure FCFS).
    pub max_bypass: u32,
}

impl DramConfig {
    /// GDDR5-like defaults (in core cycles): 16 banks, 2 KiB rows,
    /// tRCD/tRP/tCAS = 40, burst 4, starvation cap 16.
    pub fn gddr5_default() -> Self {
        DramConfig {
            banks: 16,
            row_bytes: 2048,
            line_bytes: 128,
            t_rcd: 40,
            t_rp: 40,
            t_cas: 40,
            t_burst: 4,
            queue_len: 32,
            max_bypass: 16,
        }
    }

    fn validate(&self) {
        assert!(self.banks >= 1);
        assert!(self.line_bytes >= 1 && self.row_bytes % self.line_bytes == 0);
        assert!(self.queue_len >= 1);
        assert!(self.t_burst >= 1);
    }
}

/// A request queued at the channel. `token` is an opaque caller tag
/// returned on completion (the fabric stores the upstream context there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Line-aligned local address (after partition slicing).
    pub local_addr: u64,
    /// Whether a response (read data) is produced.
    pub is_read: bool,
    /// Caller context echoed on completion.
    pub token: u64,
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCompletion {
    /// Caller context from the original request.
    pub token: u64,
    /// Whether it was a read.
    pub is_read: bool,
    /// Local address.
    pub local_addr: u64,
}

/// Channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Reads serviced.
    pub reads: u64,
    /// Writes serviced.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses to a bank with a different row open (precharge+activate).
    pub row_conflicts: u64,
    /// Accesses to a bank with no row open (activate only).
    pub row_empty: u64,
    /// Sum of (completion - enqueue) over serviced requests.
    pub total_latency: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
}

impl DramStats {
    /// Fraction of accesses hitting an open row; 0 when idle.
    pub fn row_hit_rate(&self) -> f64 {
        let n = self.row_hits + self.row_conflicts + self.row_empty;
        if n == 0 {
            0.0
        } else {
            self.row_hits as f64 / n as f64
        }
    }

    /// Mean queued-to-complete latency; 0 when idle.
    pub fn avg_latency(&self) -> f64 {
        let n = self.reads + self.writes;
        if n == 0 {
            0.0
        } else {
            self.total_latency as f64 / n as f64
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_conflicts += other.row_conflicts;
        self.row_empty += other.row_empty;
        self.total_latency += other.total_latency;
        self.rejected += other.rejected;
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    req: DramRequest,
    enqueued: Cycle,
    bank: u32,
    row: u64,
    /// Times this request was serviceable but a younger one was issued
    /// instead. At `max_bypass` the arbiter stops letting row hits jump it.
    bypass: u32,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    completion: Cycle,
    out: DramCompletion,
    enqueued: Cycle,
}

/// One DRAM channel: a request queue, per-bank row state, and a shared data
/// bus. Each call to [`tick`](Self::tick) may start one request (FR-FCFS:
/// oldest row-hit first, else oldest).
#[derive(Debug)]
pub struct DramChannel {
    cfg: DramConfig,
    queue: VecDeque<Queued>,
    banks: Vec<Bank>,
    bus_free: Cycle,
    in_flight: Vec<InFlight>,
    stats: DramStats,
}

impl DramChannel {
    /// Builds a channel from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero banks, line size
    /// not dividing row size).
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate();
        let banks = (0..cfg.banks)
            .map(|_| Bank {
                open_row: None,
                busy_until: 0,
            })
            .collect();
        DramChannel {
            cfg,
            queue: VecDeque::new(),
            banks,
            bus_free: 0,
            in_flight: Vec::new(),
            stats: DramStats::default(),
        }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn bank_and_row(&self, local_addr: u64) -> (u32, u64) {
        let line = local_addr / u64::from(self.cfg.line_bytes);
        let lines_per_row = u64::from(self.cfg.row_bytes / self.cfg.line_bytes);
        let bank = ((line / lines_per_row) % u64::from(self.cfg.banks)) as u32;
        let row = line / (lines_per_row * u64::from(self.cfg.banks));
        (bank, row)
    }

    /// Whether the queue can accept another request.
    pub fn can_accept(&self) -> bool {
        (self.queue.len() as u32) < self.cfg.queue_len
    }

    /// Enqueues a request. Returns `false` (and counts a rejection) when
    /// the queue is full.
    pub fn submit(&mut self, req: DramRequest, now: Cycle) -> bool {
        if !self.can_accept() {
            self.stats.rejected += 1;
            return false;
        }
        let (bank, row) = self.bank_and_row(req.local_addr);
        self.queue.push_back(Queued {
            req,
            enqueued: now,
            bank,
            row,
            bypass: 0,
        });
        true
    }

    /// Advances the channel one cycle: possibly starts one queued request
    /// and returns any requests completing at `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<DramCompletion> {
        // Collect completions first.
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].completion <= now {
                let f = self.in_flight.swap_remove(i);
                self.stats.total_latency += f.completion - f.enqueued;
                if f.out.is_read {
                    self.stats.reads += 1;
                } else {
                    self.stats.writes += 1;
                }
                done.push(f.out);
            } else {
                i += 1;
            }
        }
        // Keep completion order deterministic regardless of in-flight layout.
        done.sort_by_key(|c| (c.local_addr, c.token));

        // FR-FCFS issue with a starvation cap: among requests whose bank
        // is free, prefer the oldest row hit, else the oldest — unless
        // some serviceable request has already been bypassed `max_bypass`
        // times, in which case arbitration falls back to pure oldest-first
        // until the pressure clears. One command per cycle (command bus).
        // Banks overlap; only data bursts serialize on the data bus.
        let mut oldest: Option<usize> = None;
        let mut oldest_hit: Option<usize> = None;
        let mut capped = false;
        for (idx, q) in self.queue.iter().enumerate() {
            let bank = &self.banks[q.bank as usize];
            if bank.busy_until > now {
                continue;
            }
            if oldest.is_none() {
                oldest = Some(idx);
            }
            if q.bypass >= self.cfg.max_bypass {
                capped = true;
                break; // oldest-first from here on; no need to scan further
            }
            if oldest_hit.is_none() && bank.open_row == Some(q.row) {
                oldest_hit = Some(idx);
            }
        }
        let pick = if capped { oldest } else { oldest_hit.or(oldest) };
        if let Some(idx) = pick {
            // Everything older and serviceable is being jumped by a
            // younger request; count the bypass toward the cap.
            for q in self.queue.iter_mut().take(idx) {
                if self.banks[q.bank as usize].busy_until <= now {
                    q.bypass += 1;
                }
            }
            let q = self.queue.remove(idx).expect("index valid");
            let bank = &mut self.banks[q.bank as usize];
            let access_lat = match bank.open_row {
                Some(r) if r == q.row => {
                    self.stats.row_hits += 1;
                    self.cfg.t_cas
                }
                Some(_) => {
                    self.stats.row_conflicts += 1;
                    self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
                }
                None => {
                    self.stats.row_empty += 1;
                    self.cfg.t_rcd + self.cfg.t_cas
                }
            };
            bank.open_row = Some(q.row);
            // The burst begins once the bank access is done AND the data bus
            // is free; the bus is held for exactly the burst.
            let completion =
                (now + u64::from(access_lat)).max(self.bus_free) + u64::from(self.cfg.t_burst);
            bank.busy_until = completion;
            self.bus_free = completion;
            self.in_flight.push(InFlight {
                completion,
                out: DramCompletion {
                    token: q.req.token,
                    is_read: q.req.is_read,
                    local_addr: q.req.local_addr,
                },
                enqueued: q.enqueued,
            });
        }
        done
    }

    /// Whether no requests are queued or in flight.
    pub fn quiesced(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }

    /// The earliest cycle `>= now` at which ticking this channel does
    /// something (a completion fires, or a queued request finds its bank
    /// free), or `None` when it is quiesced. Conservative but never later
    /// than the true next event.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next = Cycle::MAX;
        for f in &self.in_flight {
            next = next.min(f.completion.max(now));
        }
        for q in &self.queue {
            next = next.min(self.banks[q.bank as usize].busy_until.max(now));
        }
        (next != Cycle::MAX).then_some(next)
    }

    /// Current queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> DramChannel {
        DramChannel::new(DramConfig {
            banks: 4,
            row_bytes: 1024,
            line_bytes: 128,
            t_rcd: 10,
            t_rp: 10,
            t_cas: 10,
            t_burst: 4,
            queue_len: 8,
            max_bypass: 8,
        })
    }

    fn read(addr: u64, token: u64) -> DramRequest {
        DramRequest {
            local_addr: addr,
            is_read: true,
            token,
        }
    }

    fn run_until_done(c: &mut DramChannel, start: Cycle, max: u64) -> Vec<(Cycle, DramCompletion)> {
        let mut out = Vec::new();
        for now in start..start + max {
            for d in c.tick(now) {
                out.push((now, d));
            }
            if c.quiesced() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_read_latency_row_empty() {
        let mut c = chan();
        assert!(c.submit(read(0, 1), 0));
        let done = run_until_done(&mut c, 0, 100);
        assert_eq!(done.len(), 1);
        // Row empty: tRCD + tCAS + burst = 10 + 10 + 4 = 24, started at 0.
        assert_eq!(done[0].0, 24);
        assert_eq!(done[0].1.token, 1);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        // Two requests to the same row.
        let mut c = chan();
        c.submit(read(0, 1), 0);
        c.submit(read(128, 2), 0);
        let done = run_until_done(&mut c, 0, 200);
        assert_eq!(done.len(), 2);
        assert_eq!(c.stats().row_hits, 1);
        let same_row_total = done.last().unwrap().0;

        // Two requests to different rows of the same bank.
        let mut c = chan();
        let stride = 1024 * 4; // row_bytes * banks => same bank, next row
        c.submit(read(0, 1), 0);
        c.submit(read(stride, 2), 0);
        let done = run_until_done(&mut c, 0, 400);
        assert_eq!(done.len(), 2);
        assert_eq!(c.stats().row_conflicts, 1);
        let conflict_total = done.last().unwrap().0;
        assert!(
            conflict_total > same_row_total,
            "row conflict ({conflict_total}) must take longer than row hit ({same_row_total})"
        );
    }

    #[test]
    fn fr_fcfs_prefers_row_hit() {
        let mut c = chan();
        // First request opens row 0 of bank 0.
        c.submit(read(0, 1), 0);
        let mut now = 0;
        while !c.quiesced() {
            c.tick(now);
            now += 1;
        }
        // Queue: a conflict (different row, same bank) ahead of a row hit.
        let conflict_addr = 1024 * 4;
        c.submit(read(conflict_addr, 2), now);
        c.submit(read(128, 3), now);
        let done = run_until_done(&mut c, now, 400);
        assert_eq!(done.len(), 2);
        // The row hit (token 3) must finish first despite arriving later.
        assert_eq!(done[0].1.token, 3);
        assert_eq!(done[1].1.token, 2);
    }

    #[test]
    fn banks_overlap_but_bus_serializes() {
        let mut c = chan();
        // Two different banks: bank stride = row_bytes = 1024.
        c.submit(read(0, 1), 0);
        c.submit(read(1024, 2), 0);
        let done = run_until_done(&mut c, 0, 200);
        assert_eq!(done.len(), 2);
        let t1 = done[0].0;
        let t2 = done[1].0;
        // Bank-parallel: second finishes less than a full access later.
        assert!(t2 - t1 < 24, "bank parallelism expected, got {t1} then {t2}");
        assert!(t2 > t1, "data bus must serialize bursts");
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut c = chan();
        for i in 0..8 {
            assert!(c.submit(read(i * 128, i), 0));
        }
        assert!(!c.can_accept());
        assert!(!c.submit(read(4096, 99), 0));
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn writes_complete_and_count() {
        let mut c = chan();
        c.submit(
            DramRequest {
                local_addr: 0,
                is_read: false,
                token: 7,
            },
            0,
        );
        let done = run_until_done(&mut c, 0, 100);
        assert_eq!(done.len(), 1);
        assert!(!done[0].1.is_read);
        assert_eq!(c.stats().writes, 1);
        assert_eq!(c.stats().reads, 0);
    }

    #[test]
    fn bank_row_mapping_groups_consecutive_lines() {
        let c = chan();
        // All lines of the first 1 KiB map to bank 0, row 0.
        for line in 0..8u64 {
            assert_eq!(c.bank_and_row(line * 128), (0, 0));
        }
        // The next KiB goes to bank 1, row 0.
        assert_eq!(c.bank_and_row(1024), (1, 0));
        // After all banks, row increments.
        assert_eq!(c.bank_and_row(4096), (0, 1));
    }

    #[test]
    fn avg_latency_accounts_queueing() {
        let mut c = chan();
        c.submit(read(0, 1), 0);
        c.submit(read(1024 * 4, 2), 0); // conflict later
        run_until_done(&mut c, 0, 400);
        assert!(c.stats().avg_latency() > 24.0);
        assert!(c.stats().row_hit_rate() < 0.5);
    }
}
