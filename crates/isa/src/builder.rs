//! An assembler with structured control-flow helpers.

use crate::instr::{AddrExpr, Guard, Instr, Instruction};
use crate::program::{Program, ProgramError, MAX_PREDS, MAX_REGS};
use crate::types::{
    AccessWidth, AluOp, CmpOp, CmpTy, Dim2, MemSpace, Operand, PBoolOp, Pc, Pred, Reg, SpecialReg,
};

/// A forward-referencable position in the program being built.
///
/// Created with [`KernelBuilder::label`] and resolved with
/// [`KernelBuilder::bind`]; all labels must be bound before
/// [`KernelBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a [`Program`] instruction by instruction, with fresh-register
/// allocation and structured control-flow helpers that emit correct
/// reconvergence PCs for the SIMT stack.
///
/// The structured helpers ([`if_then`](Self::if_then),
/// [`if_then_else`](Self::if_then_else), [`loop_while`](Self::loop_while),
/// [`for_range`](Self::for_range)) are the recommended way to express
/// control flow: they guarantee that both sides of every divergent branch
/// reach the branch's reconvergence point, which the simulator's SIMT stack
/// relies on. Raw labels and branches are available for unusual shapes.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    block: Dim2,
    instrs: Vec<Instruction>,
    labels: Vec<Option<Pc>>,
    /// (instruction index, label, which field) patches to apply at build.
    patches: Vec<(usize, Label, PatchField)>,
    next_reg: u16,
    next_pred: u16,
    guard: Option<Guard>,
}

#[derive(Debug, Clone, Copy)]
enum PatchField {
    Target,
    Reconv,
}

impl KernelBuilder {
    /// Starts building a kernel named `name` with CTA shape `block`.
    pub fn new(name: impl Into<String>, block: Dim2) -> Self {
        KernelBuilder {
            name: name.into(),
            block,
            instrs: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            next_reg: 0,
            next_pred: 0,
            guard: None,
        }
    }

    /// The CTA shape this kernel is being built for.
    pub fn block_dim(&self) -> Dim2 {
        self.block
    }

    /// Allocates a fresh general-purpose register.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 registers are allocated.
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg < MAX_REGS, "out of registers (limit 64)");
        let r = Reg(self.next_reg as u8);
        self.next_reg += 1;
        r
    }

    /// Allocates a fresh predicate register.
    ///
    /// # Panics
    ///
    /// Panics if more than 8 predicates are allocated.
    pub fn pred(&mut self) -> Pred {
        assert!(self.next_pred < MAX_PREDS, "out of predicates (limit 8)");
        let p = Pred(self.next_pred as u8);
        self.next_pred += 1;
        p
    }

    /// Number of general-purpose registers allocated so far. Kernel
    /// generators use this to set an exact `regs_per_thread` on the
    /// descriptor instead of guessing a budget.
    pub fn regs_used(&self) -> u16 {
        self.next_reg
    }

    /// Number of predicate registers allocated so far.
    pub fn preds_used(&self) -> u16 {
        self.next_pred
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    fn emit(&mut self, op: Instr) -> usize {
        let idx = self.instrs.len();
        self.instrs.push(Instruction {
            guard: self.guard,
            op,
        });
        idx
    }

    // ----- labels -------------------------------------------------------

    /// Creates a new unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice"
        );
        self.labels[label.0] = Some(self.instrs.len() as Pc);
    }

    /// Emits an unconditional branch to `label`.
    pub fn bra(&mut self, label: Label) {
        let idx = self.emit(Instr::Bra { target: 0 });
        self.patches.push((idx, label, PatchField::Target));
    }

    /// Emits a conditional branch to `target`, taken in lanes where
    /// `pred != neg`, reconverging at `reconv`.
    ///
    /// Prefer the structured helpers; when using this directly you are
    /// responsible for ensuring both paths reach `reconv`.
    pub fn bra_cond(&mut self, pred: Pred, neg: bool, target: Label, reconv: Label) {
        let idx = self.emit(Instr::BraCond {
            pred,
            neg,
            target: 0,
            reconv: 0,
        });
        self.patches.push((idx, target, PatchField::Target));
        self.patches.push((idx, reconv, PatchField::Reconv));
    }

    // ----- straight-line instruction helpers ----------------------------

    /// `dst = src`.
    pub fn mov_to(&mut self, dst: Reg, src: impl Into<Operand>) {
        let src = src.into();
        self.emit(Instr::Mov { dst, src });
    }

    /// Returns a fresh register holding `src`.
    pub fn movi(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.mov_to(dst, src);
        dst
    }

    /// Reads special register `sreg` into a fresh register.
    pub fn special(&mut self, sreg: SpecialReg) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Special { dst, sreg });
        dst
    }

    /// Loads kernel parameter `index` into a fresh register.
    pub fn param(&mut self, index: u8) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Param { dst, index });
        dst
    }

    /// Emits a binary ALU op into an existing register.
    pub fn alu_to(
        &mut self,
        op: AluOp,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        let (a, b) = (a.into(), b.into());
        self.emit(Instr::Alu {
            op,
            dst,
            a,
            b,
            c: Operand::Imm(0),
        });
    }

    /// Emits a binary ALU op into a fresh register.
    pub fn alu(&mut self, op: AluOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.alu_to(op, dst, a, b);
        dst
    }

    /// Emits a ternary ALU op (`IMad`/`FFma`) into a fresh register.
    pub fn alu3(
        &mut self,
        op: AluOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        let dst = self.reg();
        self.alu3_to(op, dst, a, b, c);
        dst
    }

    /// Emits a ternary ALU op into an existing register.
    pub fn alu3_to(
        &mut self,
        op: AluOp,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) {
        let (a, b, c) = (a.into(), b.into(), c.into());
        self.emit(Instr::Alu { op, dst, a, b, c });
    }

    /// `a + b` into a fresh register.
    pub fn iadd(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::IAdd, a, b)
    }

    /// `a - b` into a fresh register.
    pub fn isub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::ISub, a, b)
    }

    /// `a * b` into a fresh register.
    pub fn imul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::IMul, a, b)
    }

    /// `a * b + c` into a fresh register.
    pub fn imad(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        self.alu3(AluOp::IMad, a, b, c)
    }

    /// `a << b` into a fresh register.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Shl, a, b)
    }

    /// `a >> b` (logical) into a fresh register.
    pub fn shr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::ShrL, a, b)
    }

    /// `a & b` into a fresh register.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::And, a, b)
    }

    /// `a ^ b` into a fresh register.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Xor, a, b)
    }

    /// `a % b` (unsigned, SFU path) into a fresh register.
    pub fn urem(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::URem, a, b)
    }

    /// `f32` add into a fresh register.
    pub fn fadd(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::FAdd, a, b)
    }

    /// `f32` multiply into a fresh register.
    pub fn fmul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::FMul, a, b)
    }

    /// Fused multiply-add `a * b + c` into a fresh register.
    pub fn ffma(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        self.alu3(AluOp::FFma, a, b, c)
    }

    /// Fused multiply-add into an existing register (accumulator form).
    pub fn ffma_to(
        &mut self,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) {
        self.alu3_to(AluOp::FFma, dst, a, b, c)
    }

    /// Compares `a` and `b` into a fresh predicate.
    pub fn setp(
        &mut self,
        cmp: CmpOp,
        ty: CmpTy,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Pred {
        let dst = self.pred();
        self.setp_to(dst, cmp, ty, a, b);
        dst
    }

    /// Compares `a` and `b` into an existing predicate.
    pub fn setp_to(
        &mut self,
        dst: Pred,
        cmp: CmpOp,
        ty: CmpTy,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        let (a, b) = (a.into(), b.into());
        self.emit(Instr::SetP { dst, cmp, ty, a, b });
    }

    /// Combines two predicates into a fresh one.
    pub fn pbool(&mut self, op: PBoolOp, a: Pred, b: Pred) -> Pred {
        let dst = self.pred();
        self.pbool_to(dst, op, a, b);
        dst
    }

    /// Combines two predicates into an existing one.
    pub fn pbool_to(&mut self, dst: Pred, op: PBoolOp, a: Pred, b: Pred) {
        self.emit(Instr::PBool { dst, op, a, b });
    }

    /// `if pred { a } else { b }` into a fresh register.
    pub fn sel(&mut self, pred: Pred, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        let (a, b) = (a.into(), b.into());
        self.emit(Instr::Sel { dst, pred, a, b });
        dst
    }

    /// Emits a CTA-wide barrier.
    pub fn bar(&mut self) {
        self.emit(Instr::Bar);
    }

    /// Emits a thread exit.
    pub fn exit(&mut self) {
        self.emit(Instr::Exit);
    }

    // ----- memory --------------------------------------------------------

    /// Loads `width` bytes per lane from global memory at `[base + offset]`.
    pub fn ld_global(&mut self, base: Reg, offset: i64, width: AccessWidth) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Ld {
            space: MemSpace::Global,
            dst,
            addr: AddrExpr::new(base, offset),
            width,
        });
        dst
    }

    /// 4-byte global load.
    pub fn ld_global_u32(&mut self, base: Reg, offset: i64) -> Reg {
        self.ld_global(base, offset, AccessWidth::W4)
    }

    /// 4-byte global load into an existing register (register-reuse form
    /// for unrolled loops).
    pub fn ld_global_u32_to(&mut self, dst: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Ld {
            space: MemSpace::Global,
            dst,
            addr: AddrExpr::new(base, offset),
            width: AccessWidth::W4,
        });
    }

    /// Stores `width` bytes per lane to global memory at `[base + offset]`.
    pub fn st_global(&mut self, src: impl Into<Operand>, base: Reg, offset: i64, width: AccessWidth) {
        let src = src.into();
        self.emit(Instr::St {
            space: MemSpace::Global,
            src,
            addr: AddrExpr::new(base, offset),
            width,
        });
    }

    /// 4-byte global store.
    pub fn st_global_u32(&mut self, src: impl Into<Operand>, base: Reg, offset: i64) {
        self.st_global(src, base, offset, AccessWidth::W4)
    }

    /// 4-byte shared-memory load from `[base + offset]` (CTA-local address).
    pub fn ld_shared_u32(&mut self, base: Reg, offset: i64) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Ld {
            space: MemSpace::Shared,
            dst,
            addr: AddrExpr::new(base, offset),
            width: AccessWidth::W4,
        });
        dst
    }

    /// 4-byte shared-memory load into an existing register (register-reuse
    /// form for unrolled loops).
    pub fn ld_shared_u32_to(&mut self, dst: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Ld {
            space: MemSpace::Shared,
            dst,
            addr: AddrExpr::new(base, offset),
            width: AccessWidth::W4,
        });
    }

    /// 4-byte shared-memory store to `[base + offset]` (CTA-local address).
    pub fn st_shared_u32(&mut self, src: impl Into<Operand>, base: Reg, offset: i64) {
        let src = src.into();
        self.emit(Instr::St {
            space: MemSpace::Shared,
            src,
            addr: AddrExpr::new(base, offset),
            width: AccessWidth::W4,
        });
    }

    // ----- common idioms --------------------------------------------------

    /// `ctaid.x * ntid.x + tid.x` — the global 1-D thread index.
    pub fn global_tid_x(&mut self) -> Reg {
        let ctaid = self.special(SpecialReg::CtaIdX);
        let ntid = self.special(SpecialReg::NTidX);
        let tid = self.special(SpecialReg::TidX);
        self.imad(ctaid, ntid, tid)
    }

    /// The linearized global thread index for any grid/block shape:
    /// `cta_linear * (ntid.x * ntid.y) + tid.y * ntid.x + tid.x`. Every
    /// thread in the launch gets a distinct index in
    /// `[0, cta_count * threads_per_cta)`, which makes 2-D launches
    /// addressable with 1-D buffers (the fuzzer's generated kernels rely
    /// on this for race-free per-thread slots).
    pub fn global_tid_linear(&mut self) -> Reg {
        let cta = self.special(SpecialReg::CtaLinear);
        let ntx = self.special(SpecialReg::NTidX);
        let nty = self.special(SpecialReg::NTidY);
        let per_cta = self.imul(ntx, nty);
        let ty = self.special(SpecialReg::TidY);
        let tx = self.special(SpecialReg::TidX);
        let local = self.imad(ty, ntx, tx);
        self.imad(cta, per_cta, local)
    }

    // ----- guards ---------------------------------------------------------

    /// Emits the instructions produced by `body` under guard
    /// `pred == expect`: guarded lanes skip execution (no register write, no
    /// memory access) but the warp still spends the issue slot.
    ///
    /// Guards are cheaper than divergence for short bodies (no SIMT-stack
    /// traffic) and are how boundary checks around stores are usually
    /// expressed.
    ///
    /// # Panics
    ///
    /// Panics if guards are nested (combine predicates with
    /// [`pbool`](Self::pbool) instead).
    pub fn with_guard(&mut self, pred: Pred, expect: bool, body: impl FnOnce(&mut Self)) {
        assert!(self.guard.is_none(), "nested guards are not supported");
        self.guard = Some(Guard { pred, expect });
        body(self);
        self.guard = None;
    }

    // ----- structured control flow ----------------------------------------

    /// `if pred { body }` with correct reconvergence.
    pub fn if_then(&mut self, pred: Pred, body: impl FnOnce(&mut Self)) {
        let end = self.label();
        // Lanes where !pred jump straight to the reconvergence point.
        self.bra_cond(pred, true, end, end);
        body(self);
        self.bind(end);
    }

    /// `if pred { then_body } else { else_body }` with correct
    /// reconvergence.
    pub fn if_then_else(
        &mut self,
        pred: Pred,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let l_else = self.label();
        let l_end = self.label();
        self.bra_cond(pred, true, l_else, l_end);
        then_body(self);
        self.bra(l_end);
        self.bind(l_else);
        else_body(self);
        self.bind(l_end);
    }

    /// `while cond { body }`. `cond` is evaluated at the loop head each
    /// iteration and must return the continue-predicate. Lanes whose
    /// predicate is false leave the loop and wait at the exit until all
    /// lanes reconverge.
    pub fn loop_while(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Pred,
        body: impl FnOnce(&mut Self),
    ) {
        let head = self.label();
        let exit = self.label();
        self.bind(head);
        let p = cond(self);
        // Lanes where !p exit the loop; exit is also the reconvergence point.
        self.bra_cond(p, true, exit, exit);
        body(self);
        self.bra(head);
        self.bind(exit);
    }

    /// A counted loop: `for i in (start..end).step_by(step) { body(i) }`
    /// with unsigned comparison. Returns the induction register (which holds
    /// `end`-or-beyond after the loop).
    pub fn for_range(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        step: impl Into<Operand>,
        body: impl FnOnce(&mut Self, Reg),
    ) -> Reg {
        let (end, step) = (end.into(), step.into());
        let i = self.movi(start);
        self.loop_while(
            |k| k.setp(CmpOp::Lt, CmpTy::U64, i, end),
            |k| {
                body(k, i);
                k.alu_to(AluOp::IAdd, i, i, step);
            },
        );
        i
    }

    /// Emits `n` dependent FFMA instructions on an accumulator — the
    /// standard way workloads add tunable compute intensity.
    pub fn ffma_chain(&mut self, acc: Reg, mul: impl Into<Operand> + Copy, n: usize) {
        for _ in 0..n {
            self.ffma_to(acc, acc, mul, 1.0f32);
        }
    }

    // ----- finalization ----------------------------------------------------

    /// Finalizes the program: appends a trailing `Exit` if needed, resolves
    /// labels, and validates.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if validation fails.
    ///
    /// # Panics
    ///
    /// Panics if any label referenced by a branch was never bound.
    pub fn build(mut self) -> Result<Program, ProgramError> {
        let needs_exit = match self.instrs.last() {
            Some(i) => !(i.guard.is_none() && matches!(i.op, Instr::Exit)),
            None => true,
        };
        if needs_exit {
            self.guard = None;
            self.emit(Instr::Exit);
        }
        for (idx, label, field) in &self.patches {
            let pc = self.labels[label.0].expect("branch references an unbound label");
            match (&mut self.instrs[*idx].op, field) {
                (Instr::Bra { target }, PatchField::Target) => *target = pc,
                (Instr::BraCond { target, .. }, PatchField::Target) => *target = pc,
                (Instr::BraCond { reconv, .. }, PatchField::Reconv) => *reconv = pc,
                _ => unreachable!("patch recorded for non-branch instruction"),
            }
        }
        Program::from_instructions(self.name, self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    #[test]
    fn trailing_exit_appended() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        k.movi(1u64);
        let p = k.build().unwrap();
        assert!(matches!(p.fetch(p.len() as Pc - 1).op, Instr::Exit));
    }

    #[test]
    fn explicit_exit_not_duplicated() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        k.movi(1u64);
        k.exit();
        let p = k.build().unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn if_then_layout() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        let p0 = k.pred();
        k.if_then(p0, |k| {
            k.movi(1u64);
        });
        let prog = k.build().unwrap();
        // 0: BraCond(!p0 -> 2, reconv 2); 1: MOV; 2: EXIT
        match prog.fetch(0).op {
            Instr::BraCond {
                neg,
                target,
                reconv,
                ..
            } => {
                assert!(neg);
                assert_eq!(target, 2);
                assert_eq!(reconv, 2);
            }
            ref other => panic!("expected BraCond, got {other:?}"),
        }
    }

    #[test]
    fn if_then_else_layout() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        let p0 = k.pred();
        let a = k.reg();
        k.if_then_else(
            p0,
            |k| k.mov_to(a, 1u64),
            |k| k.mov_to(a, 2u64),
        );
        let prog = k.build().unwrap();
        // 0: BraCond(!p0 -> else@3, reconv 4); 1: MOV a,1; 2: BRA 4; 3: MOV a,2; 4: EXIT
        match prog.fetch(0).op {
            Instr::BraCond { target, reconv, .. } => {
                assert_eq!(target, 3);
                assert_eq!(reconv, 4);
            }
            ref other => panic!("expected BraCond, got {other:?}"),
        }
        match prog.fetch(2).op {
            Instr::Bra { target } => assert_eq!(target, 4),
            ref other => panic!("expected Bra, got {other:?}"),
        }
    }

    #[test]
    fn loop_layout() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        let n = k.movi(4u64);
        k.for_range(0u64, n, 1u64, |k, i| {
            k.iadd(i, 1u64);
        });
        let prog = k.build().unwrap();
        // Find the backward branch.
        let has_backward = prog
            .instructions()
            .iter()
            .enumerate()
            .any(|(pc, ins)| matches!(ins.op, Instr::Bra { target } if (target as usize) < pc));
        assert!(has_backward, "loop must contain a backward branch");
    }

    #[test]
    fn guard_applies_only_inside() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        let p0 = k.pred();
        let r = k.reg();
        k.with_guard(p0, true, |k| k.mov_to(r, 1u64));
        k.mov_to(r, 2u64);
        let prog = k.build().unwrap();
        assert!(prog.fetch(0).guard.is_some());
        assert!(prog.fetch(1).guard.is_none());
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        let l = k.label();
        k.bra(l);
        let _ = k.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        let l = k.label();
        k.bind(l);
        k.bind(l);
    }

    #[test]
    fn fresh_registers_monotonic() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        let a = k.reg();
        let b = k.reg();
        assert_ne!(a, b);
        assert_eq!(b.0, a.0 + 1);
    }

    #[test]
    fn global_tid_x_uses_imad() {
        let mut k = KernelBuilder::new("t", Dim2::x(64));
        let g = k.global_tid_x();
        let n = k.movi(0u64);
        k.iadd(g, n);
        let p = k.build().unwrap();
        assert!(p
            .instructions()
            .iter()
            .any(|i| matches!(i.op, Instr::Alu { op: AluOp::IMad, .. })));
    }

    #[test]
    fn allocation_accessors_track_fresh_registers() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        assert_eq!(k.regs_used(), 0);
        assert_eq!(k.preds_used(), 0);
        let _ = k.reg();
        let _ = k.movi(3u64); // allocates one more
        let _ = k.pred();
        assert_eq!(k.regs_used(), 2);
        assert_eq!(k.preds_used(), 1);
    }

    #[test]
    fn global_tid_linear_reads_both_dims() {
        let mut k = KernelBuilder::new("t", Dim2::new(8, 4));
        let g = k.global_tid_linear();
        let n = k.movi(0u64);
        k.iadd(g, n);
        let p = k.build().unwrap();
        for s in [
            SpecialReg::CtaLinear,
            SpecialReg::NTidX,
            SpecialReg::NTidY,
            SpecialReg::TidX,
            SpecialReg::TidY,
        ] {
            assert!(
                p.instructions()
                    .iter()
                    .any(|i| matches!(i.op, Instr::Special { sreg, .. } if sreg == s)),
                "missing special read {s:?}"
            );
        }
    }

    #[test]
    fn ffma_chain_emits_n() {
        let mut k = KernelBuilder::new("t", Dim2::x(32));
        let acc = k.movi(1.0f32);
        k.ffma_chain(acc, 1.0001f32, 5);
        let p = k.build().unwrap();
        let n_ffma = p
            .instructions()
            .iter()
            .filter(|i| matches!(i.op, Instr::Alu { op: AluOp::FFma, .. }))
            .count();
        assert_eq!(n_ffma, 5);
    }
}
