//! Memory-access coalescing and shared-memory bank-conflict modeling.
//!
//! Global accesses: the 32 lanes of a warp are merged into the minimal set
//! of 128-byte line transactions (Fermi-style). A fully coalesced warp
//! load of 4-byte elements produces one transaction; a strided or random
//! pattern produces up to 32.
//!
//! Shared accesses: 32 banks, 4 bytes wide. The access replays once per
//! maximum number of distinct addresses mapping to the same bank
//! (broadcast of an identical address is conflict-free).

use crate::simt::LaneMask;
use gpgpu_isa::WARP_SIZE;

/// The line transactions one warp access coalesces into: at most two lines
/// per lane (when an access straddles a line boundary), held inline so the
/// issue path never touches the heap.
#[derive(Debug, Clone, Copy)]
pub struct LineSet {
    lines: [u64; 2 * WARP_SIZE],
    len: u8,
}

impl LineSet {
    /// The distinct line addresses, ascending.
    pub fn as_slice(&self) -> &[u64] {
        &self.lines[..self.len as usize]
    }

    /// Number of distinct lines.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no lane produced a transaction.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<'a> IntoIterator for &'a LineSet {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Coalesces the active lanes' byte addresses into distinct line
/// transactions. Returns line-aligned addresses in ascending order
/// (deterministic).
///
/// `width` is the per-lane access size in bytes; an access straddling a
/// line boundary contributes both lines.
pub fn coalesce(
    addrs: &[u64; WARP_SIZE],
    mask: LaneMask,
    width: u64,
    line_bytes: u64,
) -> LineSet {
    debug_assert!(line_bytes.is_power_of_two());
    let mut buf = [0u64; 2 * WARP_SIZE];
    let mut n = 0;
    for lane in 0..WARP_SIZE {
        if mask & (1 << lane) == 0 {
            continue;
        }
        let first = addrs[lane] & !(line_bytes - 1);
        let last = (addrs[lane] + width - 1) & !(line_bytes - 1);
        buf[n] = first;
        n += 1;
        if last != first {
            buf[n] = last;
            n += 1;
        }
    }
    buf[..n].sort_unstable();
    // Dedup in place (reads stay ahead of writes).
    let mut m = 0;
    for i in 0..n {
        if m == 0 || buf[m - 1] != buf[i] {
            buf[m] = buf[i];
            m += 1;
        }
    }
    LineSet {
        lines: buf,
        len: m as u8,
    }
}

/// Number of shared-memory banks (Fermi: 32, 4 bytes wide).
pub const SHARED_BANKS: u64 = 32;
/// Bank width in bytes.
pub const SHARED_BANK_BYTES: u64 = 4;

/// Number of serialized passes a shared-memory warp access needs: the
/// maximum, over banks, of the number of *distinct* words the active lanes
/// address in that bank. Identical addresses broadcast in one pass.
/// Returns 0 when no lane is active.
pub fn shared_conflict_passes(addrs: &[u64; WARP_SIZE], mask: LaneMask) -> u32 {
    // Collect the active lanes' word addresses, order them by (bank, word),
    // then count the longest run of distinct words within one bank — all on
    // the stack, since this runs on the issue hot path.
    let mut words = [0u64; WARP_SIZE];
    let mut n = 0;
    for lane in 0..WARP_SIZE {
        if mask & (1 << lane) == 0 {
            continue;
        }
        words[n] = addrs[lane] / SHARED_BANK_BYTES;
        n += 1;
    }
    let words = &mut words[..n];
    words.sort_unstable_by_key(|&w| (w % SHARED_BANKS, w));
    let mut max = 0u32;
    let mut run = 0u32;
    let mut prev = None;
    for &w in words.iter() {
        match prev {
            Some(p) if p % SHARED_BANKS == w % SHARED_BANKS => {
                if p != w {
                    run += 1;
                }
            }
            _ => run = 1,
        }
        prev = Some(w);
        max = max.max(run);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs_from(f: impl Fn(usize) -> u64) -> [u64; WARP_SIZE] {
        std::array::from_fn(f)
    }

    #[test]
    fn unit_stride_coalesces_to_one_line() {
        let a = addrs_from(|l| 0x1000 + 4 * l as u64);
        let lines = coalesce(&a, u32::MAX, 4, 128);
        assert_eq!(lines.as_slice(), &[0x1000]);
    }

    #[test]
    fn unit_stride_u64_spans_two_lines() {
        let a = addrs_from(|l| 0x1000 + 8 * l as u64);
        let lines = coalesce(&a, u32::MAX, 8, 128);
        assert_eq!(lines.as_slice(), &[0x1000, 0x1080]);
    }

    #[test]
    fn misaligned_warp_touches_two_lines() {
        let a = addrs_from(|l| 0x1010 + 4 * l as u64);
        let lines = coalesce(&a, u32::MAX, 4, 128);
        assert_eq!(lines.as_slice(), &[0x1000, 0x1080]);
    }

    #[test]
    fn large_stride_serializes() {
        let a = addrs_from(|l| 0x0 + 128 * l as u64);
        let lines = coalesce(&a, u32::MAX, 4, 128);
        assert_eq!(lines.len(), 32);
    }

    #[test]
    fn inactive_lanes_ignored() {
        let a = addrs_from(|l| 128 * l as u64);
        let lines = coalesce(&a, 0b1, 4, 128);
        assert_eq!(lines.as_slice(), &[0]);
        assert!(coalesce(&a, 0, 4, 128).is_empty());
    }

    #[test]
    fn straddling_access_takes_both_lines() {
        let mut a = [0u64; WARP_SIZE];
        a[0] = 126; // 4-byte access crossing the 128B boundary
        let lines = coalesce(&a, 0b1, 4, 128);
        assert_eq!(lines.as_slice(), &[0, 128]);
    }

    #[test]
    fn same_line_lanes_merge() {
        let a = addrs_from(|_| 0x2004);
        let lines = coalesce(&a, u32::MAX, 4, 128);
        assert_eq!(lines.as_slice(), &[0x2000]);
    }

    #[test]
    fn shared_conflict_free_unit_stride() {
        let a = addrs_from(|l| 4 * l as u64);
        assert_eq!(shared_conflict_passes(&a, u32::MAX), 1);
    }

    #[test]
    fn shared_broadcast_is_one_pass() {
        let a = addrs_from(|_| 16);
        assert_eq!(shared_conflict_passes(&a, u32::MAX), 1);
    }

    #[test]
    fn shared_two_way_conflict() {
        // Stride of 2 words: lanes 0 and 16 hit bank 0 with distinct words.
        let a = addrs_from(|l| 8 * l as u64);
        assert_eq!(shared_conflict_passes(&a, u32::MAX), 2);
    }

    #[test]
    fn shared_worst_case_32_way() {
        // All lanes hit bank 0 with distinct words.
        let a = addrs_from(|l| 128 * l as u64);
        assert_eq!(shared_conflict_passes(&a, u32::MAX), 32);
    }

    #[test]
    fn shared_empty_mask_is_zero_passes() {
        let a = [0u64; WARP_SIZE];
        assert_eq!(shared_conflict_passes(&a, 0), 0);
    }
}
