//! E4 — warp-scheduler comparison (motivation): LRR vs GTO vs two-level
//! under the baseline CTA scheduler, normalized to LRR. GTO is the
//! reference point the paper's LCS builds on.

use super::{all_names, r3};
use crate::{Harness, RunEngine, RunSpec, Table};
use tbs_core::{CtaPolicy, WarpPolicy};

/// The three warp schedulers compared.
const SCHEDULERS: [WarpPolicy; 3] = [WarpPolicy::Lrr, WarpPolicy::Gto, WarpPolicy::TwoLevel(8)];

/// Every suite member under each compared warp scheduler.
pub(crate) fn plan(h: &Harness) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for name in all_names(h) {
        for warp in SCHEDULERS {
            specs.push(RunSpec::single(h, &name, warp, CtaPolicy::Baseline(None)));
        }
    }
    specs
}

/// Runs the whole suite under each warp scheduler.
pub fn run(h: &Harness) -> Vec<Table> {
    let engine = h.engine();
    engine.execute_batch(&plan(h));
    collect(h, &engine)
}

/// Tabulates from memoized results.
pub(crate) fn collect(h: &Harness, engine: &RunEngine) -> Vec<Table> {
    let mut t = Table::new(
        "E4: warp schedulers, IPC normalized to LRR (baseline CTA scheduler)",
        &["workload", "class", "lrr-ipc", "gto", "two-level", "gto-wins"],
    );
    let mut gto_geomean = 1.0f64;
    let mut n = 0u32;
    for name in all_names(h) {
        let class = gpgpu_workloads::by_name(&name, h.scale)
            .expect("suite member")
            .class();
        let lrr = engine.get(&RunSpec::single(h, &name, WarpPolicy::Lrr, CtaPolicy::Baseline(None)));
        let gto = engine.get(&RunSpec::single(h, &name, WarpPolicy::Gto, CtaPolicy::Baseline(None)));
        let two = engine.get(&RunSpec::single(
            h,
            &name,
            WarpPolicy::TwoLevel(8),
            CtaPolicy::Baseline(None),
        ));
        let gto_rel = lrr.cycles() as f64 / gto.cycles() as f64;
        let two_rel = lrr.cycles() as f64 / two.cycles() as f64;
        gto_geomean *= gto_rel;
        n += 1;
        t.push_row(vec![
            name.clone(),
            class.to_string(),
            r3(lrr.ipc()),
            r3(gto_rel),
            r3(two_rel),
            (gto_rel >= 1.0 && gto_rel >= two_rel).to_string(),
        ]);
    }
    let mut summary = Table::new("E4 summary", &["metric", "value"]);
    summary.push_row(vec![
        "gto-vs-lrr-geomean".into(),
        r3(gto_geomean.powf(1.0 / f64::from(n))),
    ]);
    vec![t, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_suite() {
        let tables = run(&Harness::quick());
        assert_eq!(tables[0].len(), 14);
        assert_eq!(tables[1].len(), 1);
    }
}
