//! Behavioural integration tests: the simulator must exhibit the
//! first-order GPU phenomena the paper's mechanisms rely on. Each test
//! constructs kernels that isolate one effect and asserts the *direction*
//! of the timing change.

use gpgpu_repro::isa::{AluOp, Dim2, KernelBuilder, KernelDescriptor, SpecialReg};
use gpgpu_repro::sim::{GpuConfig, GpuDevice};
use gpgpu_repro::tbs::{CtaPolicy, WarpPolicy};
use std::sync::Arc;

const MAX_CYCLES: u64 = 50_000_000;

fn gpu(cfg: GpuConfig) -> GpuDevice {
    let warp = WarpPolicy::Gto.factory();
    GpuDevice::new(cfg, warp.as_ref(), CtaPolicy::Baseline(None).scheduler())
}

fn run_kernel(cfg: GpuConfig, desc: KernelDescriptor) -> u64 {
    let mut g = gpu(cfg);
    let k = g.launch(desc);
    g.run(MAX_CYCLES).expect("completes");
    g.stats().kernel(k).expect("ran").cycles()
}

/// A load-chase kernel: each thread performs `n` dependent global loads
/// with the given element stride between threads.
fn load_kernel(stride_bytes: u64, loads: u64, ctas: u32) -> KernelDescriptor {
    let mut k = KernelBuilder::new("loads", Dim2::x(256));
    let gid = k.global_tid_x();
    let base = k.imul(gid, stride_bytes);
    let addr = k.iadd(base, 0x10_0000u64);
    let v = k.reg();
    k.for_range(0u64, loads, 1u64, |k, _| {
        k.ld_global_u32_to(v, addr, 0);
        // Consume the value so the next iteration depends on it.
        k.alu_to(AluOp::IAdd, addr, addr, 4096u64);
    });
    let prog = Arc::new(k.build().expect("well-formed"));
    KernelDescriptor::builder(prog, Dim2::x(ctas), Dim2::x(256))
        .build()
        .expect("valid")
}

#[test]
fn more_warps_hide_latency() {
    // Same per-thread work with coalesced (one line per warp) loads whose
    // destinations serialize per warp: each warp has one load in flight,
    // so throughput comes from warp-level parallelism. 6x the CTAs must
    // finish the 6x total workload in well under 4x the time.
    let one = run_kernel(GpuConfig::test_small(), load_kernel(4, 16, 2));
    let many = run_kernel(GpuConfig::test_small(), load_kernel(4, 16, 12));
    assert!(
        many < one * 4,
        "latency hiding failed: 2 CTAs took {one}, 12 CTAs took {many}"
    );
}

#[test]
fn coalescing_saves_time() {
    // Unit-stride threads (4 B apart) vs 128 B apart: identical
    // instruction counts, wildly different transaction counts.
    let coalesced = run_kernel(GpuConfig::test_small(), load_kernel(4, 8, 4));
    let scattered = run_kernel(GpuConfig::test_small(), load_kernel(128, 8, 4));
    assert!(
        scattered > coalesced * 2,
        "coalescing effect too weak: {coalesced} vs {scattered}"
    );
}

#[test]
fn bigger_l1_helps_reuse() {
    // A kernel that re-walks a 24 KiB array: fits a 48 KiB L1, thrashes a
    // 4 KiB one.
    let reuse_kernel = || {
        let mut k = KernelBuilder::new("reuse", Dim2::x(256));
        let tid = k.special(SpecialReg::TidX);
        let off = k.shl(tid, 2u64);
        let base = k.iadd(off, 0x10_0000u64);
        let v = k.reg();
        let addr = k.reg();
        k.for_range(0u64, 24u64, 1u64, |k, _round| {
            k.mov_to(addr, base);
            // 24 lines per round per warp → ~24 KiB footprint per CTA wave.
            k.for_range(0u64, 8u64, 1u64, |k, _i| {
                k.ld_global_u32_to(v, addr, 0);
                k.alu_to(AluOp::IAdd, addr, addr, 3072u64);
            });
        });
        let prog = Arc::new(k.build().expect("well-formed"));
        KernelDescriptor::builder(prog, Dim2::x(2), Dim2::x(256))
            .build()
            .expect("valid")
    };
    let mut small_l1 = GpuConfig::test_small();
    small_l1.l1.size_bytes = 4 * 1024;
    let mut big_l1 = GpuConfig::test_small();
    big_l1.l1.size_bytes = 48 * 1024;
    let slow = run_kernel(small_l1, reuse_kernel());
    let fast = run_kernel(big_l1, reuse_kernel());
    assert!(
        fast < slow,
        "a 12x larger L1 must help a reuse-heavy kernel: {fast} vs {slow}"
    );
}

#[test]
fn sfu_ops_cost_more_than_int_ops() {
    let alu_kernel = |op: AluOp| {
        let mut k = KernelBuilder::new("alu", Dim2::x(256));
        let v = k.movi(3u64);
        for _ in 0..64 {
            k.alu_to(op, v, v, 3u64);
        }
        let prog = Arc::new(k.build().expect("well-formed"));
        KernelDescriptor::builder(prog, Dim2::x(4), Dim2::x(256))
            .build()
            .expect("valid")
    };
    let int = run_kernel(GpuConfig::test_small(), alu_kernel(AluOp::IAdd));
    let sfu = run_kernel(GpuConfig::test_small(), alu_kernel(AluOp::UDiv));
    assert!(
        sfu > int,
        "dependent SFU chain ({sfu}) must be slower than int chain ({int})"
    );
}

#[test]
fn shared_memory_bank_conflicts_cost_cycles() {
    let shared_kernel = |stride_words: u64| {
        let mut k = KernelBuilder::new("smem", Dim2::x(256));
        let tid = k.special(SpecialReg::TidX);
        let addr = k.imul(tid, stride_words * 4);
        let v = k.reg();
        k.for_range(0u64, 32u64, 1u64, |k, _| {
            k.ld_shared_u32_to(v, addr, 0);
        });
        let prog = Arc::new(k.build().expect("well-formed"));
        KernelDescriptor::builder(prog, Dim2::x(2), Dim2::x(256))
            .smem_per_cta(48 * 1024)
            .build()
            .expect("valid")
    };
    // Stride 1 word: conflict-free. Stride 32 words: 32-way conflicts.
    let clean = run_kernel(GpuConfig::test_small(), shared_kernel(1));
    let conflicted = run_kernel(GpuConfig::test_small(), shared_kernel(32));
    assert!(
        conflicted > clean,
        "32-way bank conflicts ({conflicted}) must cost more than none ({clean})"
    );
}

#[test]
fn dram_row_locality_is_faster_than_row_thrash() {
    // Sequential lines walk DRAM rows; 1 MiB-strided lines hit a new row
    // every access.
    let sequential = run_kernel(GpuConfig::test_small(), load_kernel(4, 32, 8));
    let (thrash_cycles, thrash_rowhit) = {
        let mut k = KernelBuilder::new("thrash", Dim2::x(256));
        let gid = k.global_tid_x();
        let base = k.imul(gid, 4u64);
        let addr = k.iadd(base, 0x10_0000u64);
        let v = k.reg();
        k.for_range(0u64, 32u64, 1u64, |k, _| {
            k.ld_global_u32_to(v, addr, 0);
            k.alu_to(AluOp::IAdd, addr, addr, (1u64 << 20) + 128);
        });
        let prog = Arc::new(k.build().expect("well-formed"));
        let desc = KernelDescriptor::builder(prog, Dim2::x(8), Dim2::x(256))
            .build()
            .expect("valid");
        let mut g = gpu(GpuConfig::test_small());
        let kid = g.launch(desc);
        g.run(MAX_CYCLES).expect("completes");
        (
            g.stats().kernel(kid).expect("ran").cycles(),
            g.stats().fabric.dram.row_hit_rate(),
        )
    };
    assert!(
        thrash_cycles > sequential,
        "row thrash ({thrash_cycles}) must be slower than sequential ({sequential})"
    );
    // Cross-warp spatial locality keeps some row hits alive even under
    // per-warp thrash, but the rate must drop well below the ~0.93 a
    // sequential stream achieves.
    assert!(
        thrash_rowhit < 0.85,
        "row-hit rate under thrash should drop, got {thrash_rowhit}"
    );
}

#[test]
fn occupancy_limits_resident_ctas() {
    // A kernel demanding 32 KiB of shared memory per CTA can only have one
    // CTA resident per SM; the same kernel with no shared demand gets the
    // full complement — visible as a large runtime difference for a
    // latency-bound workload.
    let kernel = |smem: u32| {
        let mut k = KernelBuilder::new("occ", Dim2::x(256));
        let gid = k.global_tid_x();
        let base = k.imul(gid, 4096u64);
        let addr = k.iadd(base, 0x10_0000u64);
        let v = k.reg();
        k.for_range(0u64, 8u64, 1u64, |k, _| {
            k.ld_global_u32_to(v, addr, 0);
            k.alu_to(AluOp::IAdd, addr, addr, 4096u64);
        });
        let prog = Arc::new(k.build().expect("well-formed"));
        KernelDescriptor::builder(prog, Dim2::x(16), Dim2::x(256))
            .smem_per_cta(smem)
            .build()
            .expect("valid")
    };
    let packed = run_kernel(GpuConfig::test_small(), kernel(0));
    let starved = run_kernel(GpuConfig::test_small(), kernel(32 * 1024));
    assert!(
        starved > packed,
        "shared-memory-limited occupancy ({starved}) must underperform full occupancy ({packed})"
    );
}
