//! Property-style tests for the scheduling policies: estimator bounds,
//! scheduler-pick legality over arbitrary candidate sets, and dispatch
//! legality over arbitrary machine states.
//!
//! Cases are drawn from the seeded SplitMix64 generator in
//! `gpgpu-testkit` (shared across the workspace), so the crate builds
//! with no third-party dependencies and every run checks the same cases.

use gpgpu_sim::{
    CoreDispatchInfo, CtaScheduler, DispatchView, IssueView, KernelId, KernelSummary, WarpMeta,
    WarpScheduler,
};
use gpgpu_testkit::Gen;
use tbs_core::{
    estimate_cta_limit, Baws, Bcs, Gto, Lcs, LeftoverCke, Lrr, RoundRobinCta, TwoLevel,
};

/// The LCS estimate is always within [1, samples.len()] and monotone
/// non-increasing in gamma.
#[test]
fn estimator_bounds_and_monotonicity() {
    let mut g = Gen::new(0xE57);
    for i in 0..512 {
        let len = if i == 0 { 0 } else { g.range(0, 16) };
        let samples: Vec<u64> = (0..len).map(|_| g.range(0, 1_000_000)).collect();
        let (g1, g2) = (g.gamma(), g.gamma());
        let n = estimate_cta_limit(&samples, g1);
        assert!(n >= 1);
        assert!(n as usize <= samples.len().max(1));
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        assert!(
            estimate_cta_limit(&samples, lo) >= estimate_cta_limit(&samples, hi),
            "estimate must not grow with gamma"
        );
    }
}

/// Every warp scheduler returns either None or a member of the
/// candidate list, for arbitrary candidate sets and warp metadata.
#[test]
fn warp_schedulers_pick_legally() {
    let mut g = Gen::new(0x9A);
    for i in 0..128 {
        let mut candidates: Vec<usize> = (0..g.range(0, 20))
            .map(|_| g.range(0, 48) as usize)
            .collect();
        if i == 0 {
            candidates.clear();
        }
        candidates.sort_unstable();
        candidates.dedup();
        let ages: Vec<u64> = (0..48).map(|_| g.range(0, 1000)).collect();
        let rounds = g.range(1, 5);
        let warps: Vec<Option<WarpMeta>> = (0..48)
            .map(|i| {
                Some(WarpMeta {
                    kernel: KernelId(0),
                    cta_id: (i / 8) as u64,
                    cta_slot: i / 8,
                    warp_in_cta: (i % 8) as u32,
                    age: ages[i],
                    issued: 0,
                })
            })
            .collect();
        let view = IssueView::new(0, 0, &warps);
        let mut policies: Vec<Box<dyn WarpScheduler>> = vec![
            Box::new(Lrr::new()),
            Box::new(Gto::new()),
            Box::new(TwoLevel::new(4)),
            Box::new(Baws::new(2)),
        ];
        for p in &mut policies {
            // TwoLevel needs start notifications.
            for (i, w) in warps.iter().enumerate() {
                if let Some(m) = w {
                    p.on_warp_start(i, m);
                }
            }
            for _ in 0..rounds {
                match p.pick(&view, &candidates) {
                    None => assert!(candidates.is_empty() || p.name() == "two-level"),
                    Some(s) => {
                        assert!(
                            candidates.contains(&s),
                            "{} picked non-candidate {s}",
                            p.name()
                        );
                        p.on_issue(s);
                    }
                }
            }
        }
    }
}

/// CTA schedulers only dispatch kernels that exist, to cores that
/// exist, with positive counts, for arbitrary capacity states.
#[test]
fn cta_schedulers_dispatch_legally() {
    let mut g = Gen::new(0xD15);
    for i in 0..256 {
        let caps: Vec<(u32, u32)> = (0..g.range(1, 8))
            .map(|_| (g.range(0, 9) as u32, g.range(0, 9) as u32))
            .collect();
        let remaining = if i == 0 { 0 } else { g.range(0, 100) };
        let kernels = vec![KernelSummary {
            id: KernelId(0),
            next_cta: 0,
            remaining,
            total_ctas: remaining,
            warps_per_cta: 4,
        }];
        let cores: Vec<CoreDispatchInfo> = caps
            .iter()
            .map(|&(ctas, cap)| CoreDispatchInfo {
                cta_count: ctas,
                kernel_ctas: vec![(KernelId(0), ctas)],
                capacity: vec![(KernelId(0), cap)],
                completed: vec![(KernelId(0), 0)],
            })
            .collect();
        let view = DispatchView::new(0, &kernels, &cores);
        let mut policies: Vec<Box<dyn CtaScheduler>> = vec![
            Box::new(RoundRobinCta::new()),
            Box::new(RoundRobinCta::with_limit(2)),
            Box::new(Lcs::new()),
            Box::new(Bcs::new()),
            Box::new(LeftoverCke::new()),
        ];
        for p in &mut policies {
            if let Some(d) = p.select(&view) {
                assert!(d.core < cores.len(), "{}: core in range", p.name());
                assert_eq!(d.kernel, KernelId(0));
                assert!(d.count >= 1, "{}: positive count", p.name());
                assert!(remaining > 0, "{}: no dispatch from empty kernel", p.name());
                // Capacity respected for single-CTA policies; BCS may ask
                // for a whole block but never more than capacity.
                let cap = cores[d.core].capacity_for(KernelId(0));
                assert!(
                    d.count <= cap.max(1),
                    "{}: count {} vs cap {}",
                    p.name(),
                    d.count,
                    cap
                );
            }
        }
    }
}
