//! Integration tests of the persistent result store: round-trip fidelity,
//! corruption eviction, engine wiring (warm batches simulate nothing),
//! and concurrent writers sharing one store directory.

use gpgpu_bench::store::content_address;
use gpgpu_bench::{Harness, ResultStore, RunEngine, RunSpec};
use gpgpu_testkit::TempDir;
use std::path::PathBuf;
use std::sync::Arc;
use tbs_core::{CtaPolicy, WarpPolicy};

fn quick() -> Harness {
    Harness::quick()
}

fn spec(h: &Harness, name: &str) -> RunSpec {
    RunSpec::single(h, name, WarpPolicy::Gto, CtaPolicy::Baseline(None))
}

fn entry_file(store: &ResultStore, s: &RunSpec) -> PathBuf {
    let addr = content_address(s.key().as_str());
    store.root().join(&addr[..2]).join(format!("{addr}.json"))
}

#[test]
fn store_round_trips_a_result() {
    let dir = TempDir::new("store-roundtrip");
    let store = ResultStore::open(dir.path()).expect("store opens");
    let h = quick();
    let s = spec(&h, "vecadd");

    assert!(store.load(&s).is_none(), "fresh store misses");
    let engine = RunEngine::new(1);
    let result = engine.get(&s);
    store.save(&s, &result, 12_345).expect("save succeeds");

    let hit = store.load(&s).expect("saved entry loads");
    assert_eq!(hit.wall_nanos, 12_345);
    assert_eq!(hit.result.stats, result.stats, "stats survive the disk round trip");
    assert_eq!(hit.result.kernels, result.kernels);
    assert_eq!(hit.result.lcs_limits, result.lcs_limits);
    assert!(hit.result.telemetry.is_none(), "telemetry is never rebuilt");

    let stats = store.stats();
    assert_eq!(stats.stored, 1);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.saved_nanos, 12_345);
}

#[test]
fn corrupt_entries_are_evicted_and_resimulated() {
    let dir = TempDir::new("store-corrupt");
    let store = ResultStore::open(dir.path()).expect("store opens");
    let h = quick();
    let s = spec(&h, "vecadd");
    let engine = RunEngine::new(1);
    let result = engine.get(&s);
    store.save(&s, &result, 1).expect("save succeeds");

    // Truncate the entry mid-document.
    let path = entry_file(&store, &s);
    let text = std::fs::read_to_string(&path).expect("entry exists");
    std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");

    assert!(store.load(&s).is_none(), "corrupt entry is a miss");
    assert_eq!(store.stats().evicted_corrupt, 1);
    assert!(!path.exists(), "the bad file no longer occupies the address");
    assert!(
        path.with_extension("json.corrupt").exists(),
        "evidence is quarantined, not destroyed"
    );

    // The address is clear again: a save and a load work normally.
    store.save(&s, &result, 2).expect("re-save succeeds");
    assert!(store.load(&s).is_some(), "address serves hits again");
}

#[test]
fn incompatible_schema_majors_are_left_in_place() {
    let dir = TempDir::new("store-major");
    let store = ResultStore::open(dir.path()).expect("store opens");
    let h = quick();
    let s = spec(&h, "vecadd");

    let path = entry_file(&store, &s);
    std::fs::create_dir_all(path.parent().unwrap()).expect("shard dir");
    std::fs::write(&path, "{\"schema_version\":\"99.0\",\"key\":\"x\"}\n").expect("write");

    assert!(store.load(&s).is_none(), "foreign major is a miss");
    let stats = store.stats();
    assert_eq!(stats.incompatible, 1);
    assert_eq!(stats.evicted_corrupt, 0);
    assert!(path.exists(), "the foreign entry is not touched");
}

#[test]
fn warm_engine_batch_simulates_nothing() {
    let dir = TempDir::new("store-warm");
    let h = quick();
    let specs = vec![
        spec(&h, "vecadd"),
        spec(&h, "saxpy"),
        spec(&h, "vecadd"), // duplicate: dedups in-batch
    ];

    // Cold process: everything simulates, results land in the store.
    let cold_stats = {
        let store = Arc::new(ResultStore::open(dir.path()).expect("store opens"));
        let mut engine = RunEngine::new(2);
        engine.attach_store(Arc::clone(&store));
        engine.execute_batch(&specs);
        assert_eq!(engine.runs_executed(), 2);
        assert_eq!(engine.runs_from_store(), 0);
        assert_eq!(store.stats().stored, 2);
        (engine.get(&specs[0]).stats.clone(), engine.get(&specs[1]).stats.clone())
    };

    // Warm "process" (fresh engine, same store): zero simulations.
    let store = Arc::new(ResultStore::open(dir.path()).expect("store reopens"));
    let mut engine = RunEngine::new(2);
    engine.attach_store(Arc::clone(&store));
    engine.execute_batch(&specs);
    assert_eq!(engine.runs_executed(), 0, "warm batch simulates nothing");
    assert_eq!(engine.runs_from_store(), 2);
    assert_eq!(engine.summary().requested(), 3);
    assert_eq!(engine.get(&specs[0]).stats, cold_stats.0, "identical stats");
    assert_eq!(engine.get(&specs[1]).stats, cold_stats.1);
}

#[test]
fn concurrent_writers_share_one_store() {
    let dir = TempDir::new("store-concurrent");
    let h = quick();
    let specs: Vec<RunSpec> = ["vecadd", "saxpy"]
        .iter()
        .map(|n| spec(&h, n))
        .collect();

    // Two engines (as if two processes) race the same batch into one
    // store directory. Atomic write-then-rename means both install
    // identical content; nothing errors, nothing corrupts.
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let specs = &specs;
            let root = dir.path();
            scope.spawn(move || {
                let store = Arc::new(ResultStore::open(root).expect("store opens"));
                let mut engine = RunEngine::new(2);
                engine.attach_store(store);
                engine.execute_batch(specs);
            });
        }
    });

    // Every entry on disk is readable and no temp litter is left.
    let store = ResultStore::open(dir.path()).expect("store reopens");
    for s in &specs {
        assert!(store.load(s).is_some(), "entry for {:?} readable", s.key());
    }
    let mut files = Vec::new();
    let mut dirs = vec![dir.path().to_path_buf()];
    while let Some(d) = dirs.pop() {
        for entry in std::fs::read_dir(&d).expect("readable dir") {
            let p = entry.expect("entry").path();
            if p.is_dir() {
                dirs.push(p);
            } else {
                files.push(p);
            }
        }
    }
    assert!(
        files.iter().all(|p| p.extension().is_some_and(|e| e == "json")),
        "no temp or corrupt litter: {files:?}"
    );
    assert_eq!(files.len(), 2, "one entry per unique spec");
}

#[test]
fn telemetry_specs_bypass_store_loads_but_persist_pointer_files() {
    let dir = TempDir::new("store-telemetry");
    let store = Arc::new(ResultStore::open(dir.path()).expect("store opens"));
    let h = quick();
    let plain = spec(&h, "vecadd");
    let traced = plain.clone().with_telemetry(gpgpu_sim::TelemetryConfig::new(500));

    let mut engine = RunEngine::new(1);
    engine.attach_store(Arc::clone(&store));
    engine.execute_batch(std::slice::from_ref(&traced));
    assert_eq!(engine.runs_executed(), 1);

    // The traced run persisted its result plus sibling telemetry files.
    let addr = content_address(plain.key().as_str());
    let shard = dir.path().join(&addr[..2]);
    assert!(shard.join(format!("{addr}.json")).exists());
    assert!(shard.join(format!("{addr}.events.jsonl")).exists());
    assert!(shard.join(format!("{addr}.intervals.csv")).exists());

    // A fresh engine requesting telemetry must re-simulate (stored
    // entries cannot rebuild telemetry) …
    let mut engine2 = RunEngine::new(1);
    engine2.attach_store(Arc::clone(&store));
    let r = engine2.get(&traced);
    assert!(r.telemetry.is_some(), "telemetry request is honored");
    assert_eq!(engine2.runs_executed(), 1);
    // … while the plain twin is a pure store hit.
    let mut engine3 = RunEngine::new(1);
    engine3.attach_store(store);
    let r = engine3.get(&plain);
    assert!(r.telemetry.is_none());
    assert_eq!(engine3.runs_executed(), 0);
    assert_eq!(engine3.runs_from_store(), 1);
}
