//! E5 — the LCS headline result: speedup of LCS over the baseline
//! (hardware-maximum CTAs, GTO), compared with the static-*oracle* limit
//! (best value from an offline sweep), plus the `lcs-lrr` ablation showing
//! the estimate needs its greedy sensor scheduler.

use super::{all_names, r3, LIMIT_SWEEP};
use crate::{Harness, RunEngine, RunSpec, Table};
use tbs_core::{CtaPolicy, WarpPolicy};

/// One row of the LCS experiment.
#[derive(Debug, Clone)]
pub struct LcsRow {
    /// Workload name.
    pub name: String,
    /// Workload class.
    pub class: String,
    /// Baseline cycles (GTO, max CTAs).
    pub base_cycles: u64,
    /// LCS speedup over baseline.
    pub lcs: f64,
    /// Oracle (best static limit) speedup over baseline.
    pub oracle: f64,
    /// The oracle's limit.
    pub oracle_limit: u32,
    /// LCS-with-LRR-sensor speedup over the LRR baseline (ablation).
    pub lcs_lrr: f64,
    /// DYNCTA-style adaptive comparator speedup over baseline.
    pub dyncta: f64,
}

/// Per suite member: the baseline, LCS, the static-limit oracle sweep,
/// the LRR-sensor ablation (and its LRR baseline), and DYNCTA.
pub(crate) fn plan(h: &Harness) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for name in all_names(h) {
        specs.push(RunSpec::single(h, &name, WarpPolicy::Gto, CtaPolicy::Baseline(None)));
        specs.push(RunSpec::single(h, &name, WarpPolicy::Gto, CtaPolicy::Lcs(0.7)));
        for limit in LIMIT_SWEEP {
            specs.push(RunSpec::single(
                h,
                &name,
                WarpPolicy::Gto,
                CtaPolicy::Baseline(Some(limit)),
            ));
        }
        specs.push(RunSpec::single(h, &name, WarpPolicy::Lrr, CtaPolicy::Baseline(None)));
        specs.push(RunSpec::single(h, &name, WarpPolicy::Lrr, CtaPolicy::Lcs(0.7)));
        specs.push(RunSpec::single(h, &name, WarpPolicy::Gto, CtaPolicy::Dyncta));
    }
    specs
}

/// Runs the LCS comparison for every suite member.
pub fn rows(h: &Harness) -> Vec<LcsRow> {
    let engine = h.engine();
    engine.execute_batch(&plan(h));
    rows_with(h, &engine)
}

/// As [`rows`], reading from a shared engine's memoized results.
pub fn rows_with(h: &Harness, engine: &RunEngine) -> Vec<LcsRow> {
    let mut out = Vec::new();
    for name in all_names(h) {
        let class = gpgpu_workloads::by_name(&name, h.scale)
            .expect("suite member")
            .class()
            .to_string();
        let base =
            engine.get(&RunSpec::single(h, &name, WarpPolicy::Gto, CtaPolicy::Baseline(None)));
        let lcs = engine.get(&RunSpec::single(h, &name, WarpPolicy::Gto, CtaPolicy::Lcs(0.7)));
        // Oracle: best static limit (including "no limit" as the max).
        let mut oracle = (u32::MAX, base.cycles()); // limit MAX = unlimited
        for limit in LIMIT_SWEEP {
            let o = engine.get(&RunSpec::single(
                h,
                &name,
                WarpPolicy::Gto,
                CtaPolicy::Baseline(Some(limit)),
            ));
            if o.cycles() < oracle.1 {
                oracle = (limit, o.cycles());
            }
        }
        // Ablation: the same estimator fed by LRR issue counts.
        let lrr_base =
            engine.get(&RunSpec::single(h, &name, WarpPolicy::Lrr, CtaPolicy::Baseline(None)));
        let lcs_lrr = engine.get(&RunSpec::single(h, &name, WarpPolicy::Lrr, CtaPolicy::Lcs(0.7)));
        // Related-work comparator: continuous adaptation.
        let dyn_out = engine.get(&RunSpec::single(h, &name, WarpPolicy::Gto, CtaPolicy::Dyncta));
        out.push(LcsRow {
            name,
            class,
            base_cycles: base.cycles(),
            lcs: base.cycles() as f64 / lcs.cycles() as f64,
            oracle: base.cycles() as f64 / oracle.1 as f64,
            oracle_limit: oracle.0,
            lcs_lrr: lrr_base.cycles() as f64 / lcs_lrr.cycles() as f64,
            dyncta: base.cycles() as f64 / dyn_out.cycles() as f64,
        });
    }
    out
}

/// Tabulates [`rows`].
pub fn run(h: &Harness) -> Vec<Table> {
    let engine = h.engine();
    engine.execute_batch(&plan(h));
    collect(h, &engine)
}

/// Tabulates from memoized results.
pub(crate) fn collect(h: &Harness, engine: &RunEngine) -> Vec<Table> {
    let mut t = Table::new(
        "E5: LCS speedup over baseline (GTO, max CTAs); oracle = best static limit",
        &["workload", "class", "base-cycles", "lcs", "oracle", "oracle-limit", "lcs-lrr", "dyncta"],
    );
    let rs = rows_with(h, engine);
    let (mut g_lcs, mut g_oracle) = (1.0f64, 1.0f64);
    for r in &rs {
        g_lcs *= r.lcs;
        g_oracle *= r.oracle;
        let limit = if r.oracle_limit == u32::MAX {
            "max".to_string()
        } else {
            r.oracle_limit.to_string()
        };
        t.push_row(vec![
            r.name.clone(),
            r.class.clone(),
            r.base_cycles.to_string(),
            r3(r.lcs),
            r3(r.oracle),
            limit,
            r3(r.lcs_lrr),
            r3(r.dyncta),
        ]);
    }
    let n = rs.len() as f64;
    let mut s = Table::new("E5 summary (geomean speedups)", &["metric", "value"]);
    s.push_row(vec!["lcs-geomean".into(), r3(g_lcs.powf(1.0 / n))]);
    s.push_row(vec!["oracle-geomean".into(), r3(g_oracle.powf(1.0 / n))]);
    vec![t, s]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_experiment_shapes() {
        let rs = rows(&Harness::quick());
        assert_eq!(rs.len(), 14);
        for r in &rs {
            assert!(r.lcs > 0.5, "{}: LCS must not halve performance", r.name);
            assert!(r.oracle >= 0.999, "{}: oracle can never lose to base", r.name);
        }
    }
}
