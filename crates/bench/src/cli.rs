//! Typed command-line interface shared by every `exp` subcommand.
//!
//! One parser produces one [`Cli`] value: [`CommonArgs`] (scale, jobs,
//! out-dir, sim-threads, store, `--json`) apply uniformly to every
//! subcommand, and [`Command`] carries the per-subcommand arguments.
//! Parsing is position-independent — `exp --quick perf` and
//! `exp perf --quick` mean the same thing — which keeps every historical
//! invocation working.
//!
//! # Exit codes (stable)
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 1    | runtime failure (simulation error, I/O error, perf-gate or fuzz-oracle failure) |
//! | 2    | usage error (unknown flag, malformed value) |

use crate::codec::scale_from_str;
use crate::engine::ReplayMode;
use gpgpu_workloads::Scale;
use std::path::PathBuf;

/// Process exit code for success.
pub const EXIT_OK: u8 = 0;
/// Process exit code for runtime failures (simulation, I/O, gates).
pub const EXIT_RUNTIME: u8 = 1;
/// Process exit code for usage errors.
pub const EXIT_USAGE: u8 = 2;

/// Options every subcommand shares.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Workload scale (`--scale`, `--quick`).
    pub scale: Scale,
    /// Engine worker threads (`--jobs`); `None` means all cores.
    pub jobs: Option<usize>,
    /// Output directory (`--out-dir`); `None` means `results/`.
    pub out_dir: Option<PathBuf>,
    /// Per-simulation core-stepping threads (`--sim-threads`).
    pub sim_threads: usize,
    /// Also print machine-readable JSON summaries (`--json`).
    pub json: bool,
    /// Idle fast-forward enabled (disabled by `--no-fast-forward`).
    pub fast_forward: bool,
    /// Persistent result store to consult/populate (`--store`).
    pub store_dir: Option<PathBuf>,
    /// Record/replay mode (`--replay auto|off|force`): capture one
    /// functional execution per policy-independent group and re-time the
    /// rest from the record.
    pub replay: ReplayMode,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            scale: Scale::Small,
            jobs: None,
            out_dir: None,
            sim_threads: 1,
            json: false,
            fast_forward: true,
            store_dir: None,
            replay: ReplayMode::Off,
        }
    }
}

/// Arguments of the (default) `run` subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunArgs {
    /// Experiment ids to run (`e1` … `e11`).
    pub ids: Vec<String>,
    /// Run every experiment (`--all`).
    pub all: bool,
    /// Record telemetry for trace points into this directory
    /// (`--trace-dir`).
    pub trace_dir: Option<PathBuf>,
    /// Telemetry sampling interval in cycles (`--sample-every`).
    pub sample_every: u64,
}

/// Arguments of the `trace` smoke subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceArgs {
    /// Where trace files go (`--trace-dir`; default `<out-dir>/traces`).
    pub trace_dir: Option<PathBuf>,
    /// Telemetry sampling interval in cycles (`--sample-every`).
    pub sample_every: u64,
}

/// Arguments of the `perf` benchmark subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfArgs {
    /// Where the JSON report goes (`--bench-out`).
    pub bench_out: PathBuf,
    /// Previous report to gate against (`--baseline`).
    pub baseline: Option<PathBuf>,
    /// Sim-thread counts for the single-simulation sweep
    /// (`--thread-sweep`; empty skips it).
    pub thread_sweep: Vec<usize>,
    /// Skip the E1..E11 batch (`--sweep-only`).
    pub sweep_only: bool,
}

impl Default for PerfArgs {
    fn default() -> Self {
        PerfArgs {
            bench_out: PathBuf::from("BENCH_sim.json"),
            baseline: None,
            thread_sweep: vec![1, 2, 4],
            sweep_only: false,
        }
    }
}

/// Arguments of the `fuzz` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzArgs {
    /// Seed window to fuzz (`--seeds A..B`).
    pub seeds: (u64, u64),
    /// Per-run cycle budget (`--budget-cycles`).
    pub budget_cycles: u64,
    /// Replay one reproducer file instead of fuzzing (`--repro`).
    pub repro: Option<PathBuf>,
}

impl Default for FuzzArgs {
    fn default() -> Self {
        FuzzArgs {
            seeds: (0, 50),
            budget_cycles: 1_000_000,
            repro: None,
        }
    }
}

/// Arguments of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Address to bind (`--addr`; port 0 picks a free port).
    pub addr: String,
    /// Work-queue bound (`--queue-cap`); submitters block while full.
    pub queue_cap: usize,
    /// Cycles between streamed `run_progress` events
    /// (`--progress-every`; 0 disables).
    pub progress_every: u64,
    /// Seconds between periodic `[serve: stats ...]` log lines
    /// (`--stats-log-every`; 0 disables).
    pub stats_log_every: u64,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:7878".into(),
            queue_cap: 1024,
            progress_every: 1_000_000,
            stats_log_every: 60,
        }
    }
}

/// Arguments of the `report` subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportArgs {
    /// Trace directory to aggregate (`--trace-dir`); the alternative
    /// source is the common `--store`.
    pub trace_dir: Option<PathBuf>,
}

/// Arguments of the `submit` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Server address (`--addr`).
    pub addr: String,
    /// Experiment ids to submit.
    pub ids: Vec<String>,
    /// Submit every experiment (`--all`).
    pub all: bool,
    /// Ask the server to stop (after any submitted batches)
    /// (`--shutdown`).
    pub shutdown: bool,
}

impl Default for SubmitArgs {
    fn default() -> Self {
        SubmitArgs {
            addr: "127.0.0.1:7878".into(),
            ids: Vec::new(),
            all: false,
            shutdown: false,
        }
    }
}

/// Which subcommand runs, with its arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run experiments and write tables (the default subcommand).
    Run(RunArgs),
    /// Telemetry smoke run (no tables).
    Trace(TraceArgs),
    /// Simulator throughput benchmark.
    Perf(PerfArgs),
    /// Deterministic simulation fuzzer.
    Fuzz(FuzzArgs),
    /// Long-running job server.
    Serve(ServeArgs),
    /// Submit experiments to a job server.
    Submit(SubmitArgs),
    /// Cycle-accounting report over a store or trace directory.
    Report(ReportArgs),
}

/// A fully parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Shared options.
    pub common: CommonArgs,
    /// The subcommand.
    pub command: Command,
}

/// What parsing produced: a command to execute, or text to print and
/// exit 0 (`--help`, `--list`).
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// Print this to stdout and exit successfully.
    Exit(String),
    /// Execute this.
    Cli(Cli),
}

const GENERAL_HELP: &str = "\
usage: exp [options] [command]

commands (default: run)
  run               run experiments and write tables (also implied by
                    passing --all or experiment ids alone)
  trace             telemetry smoke run (no tables)
  perf              simulator throughput benchmark
  fuzz              deterministic simulation fuzzer
  serve             long-running job server (NDJSON over TCP)
  submit            run experiments against an `exp serve` server
  report            cycle-accounting report (stall attribution, occupancy)
                    over a result store or trace directory
  exp <command> --help shows the command's own options

common options
  --quick           Tiny workloads (alias for --scale tiny)
  --scale SCALE     workload scale: tiny | small | large | full
                    (default small)
  --jobs N          worker threads for the run engine (default: all cores)
  --sim-threads N   threads stepping the cores of each simulation
                    (default 1; results are byte-identical at any value)
  --out-dir PATH    directory CSVs are written to (default: results/)
  --store PATH      persistent content-addressed result store: results
                    found there are never re-simulated, new results are
                    saved there (run/serve/submit; perf accepts it only
                    with --replay, and then reads execution records only,
                    so throughput numbers stay honest)
  --replay MODE     record/replay: capture one functional execution per
                    policy-independent group, re-time other CTA policies
                    from the record (bit-identical results). Modes:
                    off (default), auto (capture when a batch amortizes
                    it), force (always capture)
  --no-fast-forward run the reference cycle-by-cycle loop (results are
                    bit-identical either way; this is the slow path)
  --json            also print the run summary as one JSON object
  --list            list experiment ids
  --help            show this help (after a command: that command's help)

exit status: 0 success, 1 runtime failure, 2 usage error";

const RUN_HELP: &str = "\
usage: exp [options] (--all | e1 e2 ... e11)

run experiments through one shared, deduplicating engine; print tables
and write them as CSV under --out-dir.

  --all             run every experiment (e1..e11)
  --trace-dir PATH  record telemetry for E2/E5/E8 trace points into PATH
  --sample-every N  telemetry sampling interval in cycles (default 1000)

With --store, results already in the store are loaded instead of
simulated, and fresh results are persisted for the next invocation.
Common options (exp --help) apply.";

const TRACE_HELP: &str = "\
usage: exp trace [options]

telemetry smoke run: trace one kernel, write the trace files (to
--trace-dir, default <out-dir>/traces), print no tables.

  --trace-dir PATH  where trace files go
  --sample-every N  telemetry sampling interval in cycles (default 1000)

Common options (exp --help) apply.";

const PERF_HELP: &str = "\
usage: exp perf [options]

simulator throughput benchmark: run the full E1..E11 batch, report
per-simulation and wall-clock-aggregate cycles/sec, sweep one simulation
across sim-thread counts, write BENCH_sim.json. Refuses --store unless
--replay auto|force is given (a warm store would fake the throughput
numbers); with replay, the store supplies execution records only —
cached results are still never served.

  --bench-out PATH  where the JSON report goes (default BENCH_sim.json)
  --baseline PATH   compare against a previous report; exit 1 on a >25%
                    per-simulation cycles/sec regression
  --thread-sweep L  comma-separated sim-thread counts for the
                    single-simulation sweep (default 1,2,4; `none`
                    skips it)
  --sweep-only      skip the E1..E11 batch and run only the thread sweep
                    (useful at --scale large); no baseline gating

Common options (exp --help) apply.";

const FUZZ_HELP: &str = "\
usage: exp fuzz [options]

deterministic simulation fuzzer: seeded random kernels run against
differential (fast-forward vs reference), functional (CPU-mirrored
memory, invariant across CTA policies), and conservation oracles;
failures shrink to a reproducer file under --out-dir.

  --seeds A..B      seed window to fuzz (default 0..50)
  --budget-cycles N per-run cycle budget (default 1000000)
  --repro FILE      replay one reproducer file instead of fuzzing

reproducer files are plain key=value lines (# comments allowed): seed,
warp, grid=WxH, block=WxH, trips, ops=op:imm[,...], smem, divergent,
optional grid2/block2/ops2 (concurrent kernel), optional dsl (nonzero
seeds a DSL-generated kernel 1), max_ctas, budget. EXPERIMENTS.md
documents the full format with an example.

Common options (exp --help) apply.";

const SERVE_HELP: &str = "\
usage: exp serve [options]

long-running job server: accepts NDJSON batches of run specs over TCP,
executes them on a bounded queue over --jobs workers, streams per-run
progress and results back, and serves --store hits instantly. Duplicate
in-flight submissions coalesce onto one execution. Stops gracefully when
a client sends shutdown (exp submit --shutdown).

  --addr HOST:PORT   address to bind (default 127.0.0.1:7878; port 0
                     picks a free port, printed on startup)
  --queue-cap N      bound on the work queue; submitters block while it
                     is full (default 1024)
  --progress-every N cycles between streamed run_progress events
                     (default 1000000; 0 disables)
  --stats-log-every N seconds between periodic [serve: stats ...] log
                     lines (default 60; 0 disables); the same snapshot
                     is served on demand by the `stats` wire request

Common options (exp --help) apply; --store gives the server persistence
and --replay auto|force lets the shared engine serve policy variants by
re-timing a captured execution record (reported as source=replayed).";

const REPORT_HELP: &str = "\
usage: exp report (--store PATH | --trace-dir PATH) [--json]

cycle-accounting report: where every scheduler slot of every run went
(the stall taxonomy NoResidentWarp / ScoreboardDep / MemPending /
ExecUnitBusy / BarrierWait / FastForwardedIdle), average resident
CTAs/warps per core, and cross-policy comparisons against the baseline
CTA policy of each run group. Re-checks the conservation identity
(sum of stall counters == idle+stalled slots) on every row.

  --store PATH      report over every entry of a result store
  --trace-dir PATH  report over every *.intervals.csv in a trace
                    directory (e.g. from exp --trace-dir)
  --json            print the report as one JSON document instead of text

Exactly one source is required. Common options (exp --help) apply.";

const SUBMIT_HELP: &str = "\
usage: exp submit [options] (--all | e1 e2 ... e11) [--shutdown]

run experiments against an `exp serve` server: plan locally, submit the
spec batch, stream progress, then build the same tables (byte-identical
CSVs) from the returned results.

  --addr HOST:PORT  server address (default 127.0.0.1:7878)
  --shutdown        ask the server to stop (after any submitted batches;
                    usable on its own too)

Common options (exp --help) apply.";

/// The general usage text (printed with usage errors).
pub fn usage() -> &'static str {
    GENERAL_HELP
}

fn help_for(cmd: Option<&str>) -> &'static str {
    match cmd {
        Some("run") => RUN_HELP,
        Some("trace") => TRACE_HELP,
        Some("perf") => PERF_HELP,
        Some("fuzz") => FUZZ_HELP,
        Some("serve") => SERVE_HELP,
        Some("submit") => SUBMIT_HELP,
        Some("report") => REPORT_HELP,
        _ => GENERAL_HELP,
    }
}

const SUBCOMMANDS: [&str; 7] = ["run", "trace", "perf", "fuzz", "serve", "submit", "report"];

/// Parses the `--seeds A..B` window syntax.
fn parse_seed_range(s: &str) -> Option<(u64, u64)> {
    let (lo, hi) = s.split_once("..")?;
    let (lo, hi) = (lo.parse().ok()?, hi.parse().ok()?);
    (lo < hi).then_some((lo, hi))
}

impl Cli {
    /// Parses argv (without the program name). Errors are usage errors —
    /// print them with [`usage`] and exit [`EXIT_USAGE`].
    pub fn parse(args: &[String]) -> Result<Parsed, String> {
        let mut common = CommonArgs::default();
        let mut cmd: Option<&str> = None;
        let mut ids: Vec<String> = Vec::new();
        let mut all = false;
        // Subcommand-specific accumulators (validated against `cmd` at
        // the end, so flag position never matters).
        let mut trace_dir: Option<PathBuf> = None;
        let mut sample_every: u64 = 1000;
        let mut perf = PerfArgs::default();
        let mut fuzz = FuzzArgs::default();
        let mut serve = ServeArgs::default();
        let mut addr: Option<String> = None;
        let mut shutdown = false;

        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => common.scale = Scale::Tiny,
                "--all" => all = true,
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    common.scale = scale_from_str(v)
                        .map_err(|_| format!("--scale must be tiny, small, large, or full, got {v:?}"))?;
                }
                "--jobs" => {
                    let n = it
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--jobs needs a positive integer")?;
                    common.jobs = Some(n);
                }
                "--sim-threads" => {
                    let n = it
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--sim-threads needs a positive integer")?;
                    common.sim_threads = n;
                }
                "--out-dir" => {
                    common.out_dir = Some(it.next().ok_or("--out-dir needs a path")?.into());
                }
                "--store" => {
                    common.store_dir = Some(it.next().ok_or("--store needs a path")?.into());
                }
                "--replay" => {
                    let v = it.next().ok_or("--replay needs a mode: auto, off, or force")?;
                    common.replay = v
                        .parse()
                        .map_err(|_| format!("--replay must be auto, off, or force, got {v:?}"))?;
                }
                "--json" => common.json = true,
                "--no-fast-forward" => common.fast_forward = false,
                "--trace-dir" => {
                    trace_dir = Some(it.next().ok_or("--trace-dir needs a path")?.into());
                }
                "--sample-every" => {
                    sample_every = it
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--sample-every needs a positive cycle count")?;
                }
                "--bench-out" => {
                    perf.bench_out = it.next().ok_or("--bench-out needs a path")?.into();
                }
                "--baseline" => {
                    perf.baseline = Some(it.next().ok_or("--baseline needs a path")?.into());
                }
                "--thread-sweep" => {
                    let v = it
                        .next()
                        .ok_or("--thread-sweep needs a list like 1,2,4 (or none)")?;
                    if v == "none" {
                        perf.thread_sweep.clear();
                    } else {
                        perf.thread_sweep = v
                            .split(',')
                            .map(|s| s.parse::<usize>().ok().filter(|&n| n > 0))
                            .collect::<Option<Vec<usize>>>()
                            .ok_or("--thread-sweep needs positive integers like 1,2,4")?;
                    }
                }
                "--sweep-only" => perf.sweep_only = true,
                "--seeds" => {
                    fuzz.seeds = it
                        .next()
                        .and_then(|v| parse_seed_range(v))
                        .ok_or("--seeds needs a window like 0..200 (start < end)")?;
                }
                "--budget-cycles" => {
                    fuzz.budget_cycles = it
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .filter(|&n| n >= 1000)
                        .ok_or("--budget-cycles needs an integer >= 1000")?;
                }
                "--repro" => {
                    fuzz.repro = Some(it.next().ok_or("--repro needs a reproducer file path")?.into());
                }
                "--addr" => {
                    addr = Some(it.next().ok_or("--addr needs host:port")?.clone());
                }
                "--queue-cap" => {
                    serve.queue_cap = it
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--queue-cap needs a positive integer")?;
                }
                "--progress-every" => {
                    serve.progress_every = it
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or("--progress-every needs a cycle count (0 disables)")?;
                }
                "--stats-log-every" => {
                    serve.stats_log_every = it
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or("--stats-log-every needs a second count (0 disables)")?;
                }
                "--shutdown" => shutdown = true,
                "--list" => {
                    let mut out = String::new();
                    for id in crate::experiments::all_ids() {
                        out.push_str(id);
                        out.push('\n');
                    }
                    out.pop();
                    return Ok(Parsed::Exit(out));
                }
                "--help" | "-h" => {
                    // `exp --help serve` and `exp serve --help` both show
                    // the serve section.
                    let later = it.find(|t| SUBCOMMANDS.contains(&t.as_str()));
                    return Ok(Parsed::Exit(
                        help_for(cmd.or(later.map(String::as_str))).to_string(),
                    ));
                }
                name if SUBCOMMANDS.contains(&name) => {
                    if let Some(prev) = cmd {
                        if prev != name {
                            return Err(format!("two commands given: {prev} and {name}"));
                        }
                    }
                    cmd = Some(match name {
                        "run" => "run",
                        "trace" => "trace",
                        "perf" => "perf",
                        "fuzz" => "fuzz",
                        "serve" => "serve",
                        "submit" => "submit",
                        "report" => "report",
                        _ => unreachable!(),
                    });
                }
                id if id.starts_with('e') && crate::experiments::all_ids().contains(&id) => {
                    ids.push(id.to_string());
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }

        let command = match cmd.unwrap_or("run") {
            "trace" => Command::Trace(TraceArgs {
                trace_dir,
                sample_every,
            }),
            "perf" => {
                if perf.sweep_only {
                    if perf.baseline.is_some() {
                        return Err("--sweep-only runs no batch, so --baseline cannot gate".into());
                    }
                    if perf.thread_sweep.is_empty() {
                        return Err("--sweep-only with --thread-sweep none would do nothing".into());
                    }
                }
                if common.store_dir.is_some() && common.replay == ReplayMode::Off {
                    return Err(
                        "perf refuses --store without --replay auto|force: serving cached \
                         results would fake the throughput numbers (replay modes use the \
                         store for execution records only, never cached results)"
                            .into(),
                    );
                }
                Command::Perf(perf)
            }
            "fuzz" => Command::Fuzz(fuzz),
            "serve" => {
                if let Some(a) = addr {
                    serve.addr = a;
                }
                Command::Serve(serve)
            }
            "submit" => {
                if ids.is_empty() && !all && !shutdown {
                    return Err(
                        "submit needs --all, experiment ids, or --shutdown".into()
                    );
                }
                let mut args = SubmitArgs {
                    ids,
                    all,
                    shutdown,
                    ..SubmitArgs::default()
                };
                if let Some(a) = addr {
                    args.addr = a;
                }
                Command::Submit(args)
            }
            "report" => {
                if common.store_dir.is_some() == trace_dir.is_some() {
                    return Err(
                        "report needs exactly one source: --store PATH or --trace-dir PATH".into(),
                    );
                }
                Command::Report(ReportArgs { trace_dir })
            }
            _ => {
                if ids.is_empty() && !all {
                    return Err(
                        "nothing to run; pass --all, experiment ids, or a command".into()
                    );
                }
                Command::Run(RunArgs {
                    ids,
                    all,
                    trace_dir,
                    sample_every,
                })
            }
        };
        Ok(Parsed::Cli(Cli { common, command }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Parsed, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Cli::parse(&v)
    }

    fn cli(args: &[&str]) -> Cli {
        match parse(args).expect("parses") {
            Parsed::Cli(c) => c,
            other => panic!("expected a command, got {other:?}"),
        }
    }

    #[test]
    fn bare_ids_mean_run() {
        let c = cli(&["--quick", "e3", "e5"]);
        assert_eq!(c.common.scale, Scale::Tiny);
        match c.command {
            Command::Run(r) => assert_eq!(r.ids, vec!["e3", "e5"]),
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn flag_position_is_irrelevant() {
        assert_eq!(
            cli(&["--jobs", "2", "perf", "--sweep-only"]),
            cli(&["perf", "--sweep-only", "--jobs", "2"])
        );
    }

    #[test]
    fn per_command_help_is_selected() {
        for args in [&["serve", "--help"][..], &["--help", "serve"][..]] {
            match parse(args).expect("parses") {
                Parsed::Exit(text) => assert!(text.contains("--queue-cap"), "for {args:?}"),
                other => panic!("expected help, got {other:?}"),
            }
        }
        match parse(&["--help"]).expect("parses") {
            Parsed::Exit(text) => assert!(text.contains("usage: exp")),
            other => panic!("expected help, got {other:?}"),
        }
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(parse(&["--jobs", "zero"]).is_err());
        assert!(parse(&["--nonsense"]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["submit"]).is_err());
        assert!(parse(&["perf", "--sweep-only", "--baseline", "x.json"]).is_err());
    }

    #[test]
    fn report_needs_exactly_one_source() {
        assert!(parse(&["report"]).is_err());
        assert!(parse(&["report", "--store", "a", "--trace-dir", "b"]).is_err());
        match cli(&["report", "--store", "cache", "--json"]).command {
            Command::Report(r) => assert_eq!(r.trace_dir, None),
            other => panic!("expected report, got {other:?}"),
        }
        match cli(&["--trace-dir", "traces", "report"]).command {
            Command::Report(r) => {
                assert_eq!(r.trace_dir.as_deref(), Some(std::path::Path::new("traces")));
            }
            other => panic!("expected report, got {other:?}"),
        }
        match parse(&["report", "--help"]).expect("parses") {
            Parsed::Exit(text) => assert!(text.contains("--trace-dir")),
            other => panic!("expected help, got {other:?}"),
        }
    }

    #[test]
    fn replay_flag_parses_on_run_trace_and_perf() {
        assert_eq!(cli(&["--all"]).common.replay, ReplayMode::Off);
        assert_eq!(cli(&["--all", "--replay", "auto"]).common.replay, ReplayMode::Auto);
        assert_eq!(cli(&["trace", "--replay", "force"]).common.replay, ReplayMode::Force);
        assert_eq!(cli(&["perf", "--replay", "auto"]).common.replay, ReplayMode::Auto);
        assert!(parse(&["--all", "--replay"]).is_err());
        assert!(parse(&["--all", "--replay", "sometimes"]).is_err());
    }

    #[test]
    fn perf_store_needs_replay() {
        // Plain cache hits would fake throughput numbers: usage error.
        let err = parse(&["perf", "--store", "cache"]).unwrap_err();
        assert!(err.contains("--replay"), "{err}");
        // With a replay mode, the store is legitimate (records only).
        let c = cli(&["perf", "--store", "cache", "--replay", "auto"]);
        assert_eq!(c.common.store_dir.as_deref(), Some(std::path::Path::new("cache")));
        assert_eq!(c.common.replay, ReplayMode::Auto);
        assert!(parse(&["perf", "--store", "cache", "--replay", "force"]).is_ok());
        assert!(parse(&["perf", "--store", "cache", "--replay", "off"]).is_err());
    }

    #[test]
    fn store_and_serve_flags_parse() {
        let c = cli(&["serve", "--store", "cache", "--addr", "127.0.0.1:0", "--queue-cap", "7"]);
        assert_eq!(c.common.store_dir.as_deref(), Some(std::path::Path::new("cache")));
        match c.command {
            Command::Serve(s) => {
                assert_eq!(s.addr, "127.0.0.1:0");
                assert_eq!(s.queue_cap, 7);
            }
            other => panic!("expected serve, got {other:?}"),
        }
    }
}
