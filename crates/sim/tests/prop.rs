//! Property-style tests for simulator data structures: the SIMT stack
//! under random structured divergence and the coalescer's covering
//! property.
//!
//! Cases are drawn from the seeded SplitMix64 generator in
//! `gpgpu-testkit` (shared across the workspace), so the crate builds
//! with no third-party dependencies and every run checks the same cases.

use gpgpu_sim::coalesce::{coalesce, shared_conflict_passes};
use gpgpu_sim::{SimtStack, FULL_MASK};
use gpgpu_testkit::Gen;

/// An if/else over a random lane partition always reconverges with the
/// original mask, regardless of which side exits lanes.
#[test]
fn if_else_reconverges() {
    let mut g = Gen::new(0x51);
    for i in 0..512 {
        let taken_mask = match i {
            0 => 0,
            1 => FULL_MASK,
            _ => g.next_u32(),
        };
        let exits = match i {
            2 => FULL_MASK,
            _ => g.next_u32(),
        };
        let taken = taken_mask; // lanes taking the branch
        let fall = !taken_mask;
        let mut s = SimtStack::new(FULL_MASK);
        s.branch(taken, fall, 10, 20);
        let exited = exits & taken; // some taken lanes exit
        // Run the taken side (if any non-exited lanes remain).
        if let Some((pc, m)) = s.sync(exited) {
            if pc == 10 {
                assert_eq!(m, taken & !exited);
                s.jump(20);
            }
        }
        // Run the fall side.
        if let Some((pc, m)) = s.sync(exited) {
            if pc == 1 {
                assert_eq!(m, fall & !exited);
                s.jump(20);
            }
        }
        // Reconverged: everything alive is back together at 20.
        match s.sync(exited) {
            Some((20, m)) => assert_eq!(m, FULL_MASK & !exited),
            None => assert_eq!(exited, FULL_MASK),
            other => panic!("unexpected state {other:?}"),
        }
    }
}

/// Nested divergence never leaves the stack deeper than 2 entries per
/// nesting level + 1.
#[test]
fn nesting_depth_bounded() {
    let mut g = Gen::new(0xDEB7);
    for _ in 0..256 {
        let masks: Vec<u32> = (0..g.range(1, 6)).map(|_| g.next_u32()).collect();
        let mut s = SimtStack::new(FULL_MASK);
        let mut live = FULL_MASK;
        let mut depth_levels = 0;
        for (i, m) in masks.iter().enumerate() {
            let taken = live & m;
            let fall = live & !m;
            if taken == 0 || fall == 0 {
                continue; // uniform, no divergence
            }
            let base = (i as u32 + 1) * 100;
            s.branch(taken, fall, base, base + 50);
            depth_levels += 1;
            assert!(
                s.depth() <= 2 * depth_levels + 1,
                "depth {} after {} levels",
                s.depth(),
                depth_levels
            );
            // Descend into the taken side.
            let (_, m2) = s.sync(0).expect("live");
            live = m2;
        }
    }
}

/// Coalescing covers every active lane's access and produces sorted,
/// unique, line-aligned addresses.
#[test]
fn coalesce_covers_and_is_canonical() {
    let mut g = Gen::new(0xC0A);
    for i in 0..256 {
        let mut addrs = [0u64; 32];
        for a in &mut addrs {
            *a = g.range(0, 100_000);
        }
        let mask = match i {
            0 => 0,
            1 => FULL_MASK,
            _ => g.next_u32(),
        };
        let wide = i % 2 == 0;
        let width = if wide { 8 } else { 4 };
        let lines = coalesce(&addrs, mask, width, 128);
        // Canonical form.
        for w in lines.as_slice().windows(2) {
            assert!(w[0] < w[1], "sorted and unique");
        }
        for &l in &lines {
            assert_eq!(l % 128, 0, "line aligned");
        }
        // Covering: every active byte belongs to some returned line.
        for lane in 0..32 {
            if mask & (1 << lane) == 0 {
                continue;
            }
            for b in [addrs[lane], addrs[lane] + width - 1] {
                let line = b & !127;
                assert!(lines.as_slice().contains(&line), "byte {b:#x} uncovered");
            }
        }
        // Upper bound: at most 2 lines per active lane.
        let active = mask.count_ones() as usize;
        assert!(lines.len() <= 2 * active);
        if active == 0 {
            assert!(lines.is_empty());
        }
    }
}

/// Bank-conflict passes are between 1 and the active-lane count (when
/// any lane is active), and a uniform broadcast is always 1 pass.
#[test]
fn shared_conflicts_bounded() {
    let mut g = Gen::new(0x5AED);
    for i in 0..256 {
        let mut addrs = [0u64; 32];
        for a in &mut addrs {
            *a = g.range(0, 4096);
        }
        let mask = match i {
            0 => 0,
            1 => FULL_MASK,
            _ => g.next_u32(),
        };
        let passes = shared_conflict_passes(&addrs, mask);
        let active = mask.count_ones();
        if active == 0 {
            assert_eq!(passes, 0);
        } else {
            assert!(passes >= 1);
            assert!(passes <= active);
        }
        // Broadcast.
        let same = [400u64; 32];
        if active > 0 {
            assert_eq!(shared_conflict_passes(&same, mask), 1);
        }
    }
}
